package experiments

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/pipeline"
	"repro/internal/program"
	"repro/internal/stats"
	"repro/internal/workload"
)

// traceCache hands out each benchmark's recorded dynamic instruction trace.
// The functional execution of a benchmark is identical under every machine
// configuration, so a sweep records it once and shares it read-only across
// all concurrent simulations of that benchmark. Entries are reference-counted
// by pending job, so a long sweep holds only the traces it is actively
// simulating instead of one per benchmark.
type traceCache struct {
	mu      sync.Mutex
	entries map[string]*traceEntry
	left    map[string]int // pending jobs per benchmark
}

type traceEntry struct {
	once   sync.Once
	record func()
	trace  *emu.Trace
	err    error
	// The pre-decoded TraceMeta is cached alongside the trace: it is pure
	// configuration-independent preprocessing, so every config-parallel batch
	// of the benchmark shares one pre-decode exactly as it shares one trace.
	metaOnce sync.Once
	meta     *pipeline.TraceMeta
	metaErr  error
}

func newTraceCache(progs map[string]*program.Program, loaders map[string]func() (*emu.Trace, error), pending []sweepJob) *traceCache {
	c := &traceCache{
		entries: make(map[string]*traceEntry, len(progs)+len(loaders)),
		left:    make(map[string]int, len(progs)+len(loaders)),
	}
	for b := range progs {
		prog := progs[b]
		e := &traceEntry{}
		// The record closure runs inside once.Do on first use, so workers
		// that share a benchmark block until its trace exists and record it
		// exactly once.
		e.record = func() { e.trace, e.err = emu.RecordTrace(prog, 0) }
		c.entries[b] = e
	}
	// Trace-backed benchmarks (the trace experiment) have no program: their
	// shared trace comes from decoding a recorded file, under the same
	// once.Do so concurrent configurations of one trace decode it exactly
	// once.
	for b := range loaders {
		load := loaders[b]
		e := &traceEntry{}
		e.record = func() { e.trace, e.err = load() }
		c.entries[b] = e
	}
	for _, j := range pending {
		c.left[j.benchmark]++
	}
	return c
}

// get returns the benchmark's shared trace, recording it on first use.
func (c *traceCache) get(benchmark string) (*emu.Trace, error) {
	c.mu.Lock()
	e := c.entries[benchmark]
	c.mu.Unlock()
	if e == nil {
		return nil, fmt.Errorf("experiments: no trace entry for benchmark %q", benchmark)
	}
	e.once.Do(e.record)
	return e.trace, e.err
}

// getMeta returns the benchmark's shared TraceMeta, pre-decoding it on first
// use (which records the trace first if needed).
func (c *traceCache) getMeta(benchmark string) (*pipeline.TraceMeta, error) {
	c.mu.Lock()
	e := c.entries[benchmark]
	c.mu.Unlock()
	if e == nil {
		return nil, fmt.Errorf("experiments: no trace entry for benchmark %q", benchmark)
	}
	e.once.Do(e.record)
	if e.err != nil {
		return nil, e.err
	}
	e.metaOnce.Do(func() { e.meta, e.metaErr = pipeline.NewTraceMeta(e.trace) })
	return e.meta, e.metaErr
}

// release notes that one of the benchmark's jobs finished, dropping the
// trace when none remain.
func (c *traceCache) release(benchmark string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.left[benchmark]--; c.left[benchmark] <= 0 {
		delete(c.entries, benchmark)
		delete(c.left, benchmark)
	}
}

// sweepJob is one (benchmark, configuration) simulation in a sweep's
// deterministic job list. index is the job's position in the full list and
// decides which shard owns it.
type sweepJob struct {
	index     int
	benchmark string
	key       string
	cfg       pipeline.Config
}

// PairSlice restricts a run to the contiguous job-list positions
// [Start, End) of the sweep's deterministic pair order. Unlike the modulo
// sharding of Options.Shards, a slice is a dense range — the unit the
// distributed coordinator leases to one remote worker as a shard task.
type PairSlice struct {
	Start int `json:"start"`
	End   int `json:"end"`
}

// PairJob identifies one pending (benchmark, configuration) simulation by
// its position in the full deterministic pair order. It is the unit of work
// an Executor is handed: enough to address the pair remotely (a remote
// worker re-derives the grid from the job spec and selects by index), and
// enough for the engine to fold the result back into the sweep.
type PairJob struct {
	Index     int    `json:"index"`
	Benchmark string `json:"benchmark"`
	Config    string `json:"config"`
}

// ExecRequest is the engine's side of a remote execution: the pending pairs
// after resume and shard filtering, the already-resolved entries a remote
// slice may span, and the callback that lands results.
type ExecRequest struct {
	// Pending lists the pairs to execute, in ascending Index order (a
	// subsequence of the full deterministic pair order).
	Pending []PairJob
	// Resumed maps full-order indices that were already resolved from the
	// result store to their entries. A contiguous slice [Start, End) leased
	// over the full order may span resolved pairs; sending their entries
	// along lets the remote worker resume them instead of re-simulating.
	Resumed map[int]CheckpointEntry
	// Emit reports one executed pair's measurements. It is safe for
	// concurrent use, idempotent per pair (a duplicate emission — e.g. a
	// re-queued shard task whose original worker already delivered some
	// pairs — is ignored), and must not be called after the Executor
	// returns.
	Emit func(PairJob, stats.Run)
}

// Executor runs a sweep's pending pairs somewhere other than the local
// worker pool — the simulation coordinator installs one that leases
// contiguous slices of the pair order to remote workers. The engine still
// owns planning, resume, the result store, and progress events; the
// executor owns only raw pair execution. Returning an error fails the sweep
// (pairs already emitted are still recorded in the store, exactly like a
// local run with a failing pair).
type Executor func(ctx context.Context, req ExecRequest) error

// Summary describes how a sweep's job list was disposed of.
type Summary struct {
	// Total is the size of the full (benchmark × configuration) grid.
	Total int
	// Executed counts jobs simulated by this process.
	Executed int
	// Resumed counts jobs loaded from the checkpoint file instead of re-run.
	Resumed int
	// SkippedShard counts jobs belonging to other shards.
	SkippedShard int
	// Failed counts jobs whose simulation returned an error.
	Failed int
	// CorruptCheckpoint counts checkpoint lines that could not be parsed
	// (e.g. a line truncated when the writing process was killed). They are
	// skipped — their jobs re-run — and surfaced as a warning.
	CorruptCheckpoint int
	// Incomplete counts benchmarks dropped from a table/figure presentation
	// because shard selection left them without a full configuration set.
	Incomplete int
	// BatchGroups and BatchedPairs count config-parallel execution as
	// planned: groups of width > 1 and the pairs they cover. Zero when
	// batching is disabled (Options.NoBatch / NOSQ_NO_BATCH) or every group
	// was a singleton. They describe only how pairs were simulated, never
	// what was measured, so they appear in no report rendering.
	BatchGroups  int
	BatchedPairs int
}

// CheckpointEntry is one finished job: one JSON line of a checkpoint file,
// one record of a ResultStore, and the payload of a per-pair progress event.
// Experiment scopes the entry so a store shared across experiments cannot
// serve one experiment's runs to another, and Iterations/MaxInsts pin the
// workload length so a resume under different settings re-runs instead of
// silently serving stale measurements.
type CheckpointEntry struct {
	Experiment string    `json:"experiment,omitempty"`
	Iterations int       `json:"iterations,omitempty"`
	MaxInsts   uint64    `json:"max_insts,omitempty"`
	Benchmark  string    `json:"benchmark"`
	Config     string    `json:"config"`
	Run        stats.Run `json:"run"`
}

// Key returns the entry's identity within a result store: the fields that
// must all match for a stored run to be served instead of re-simulated.
func (e CheckpointEntry) Key() string {
	return pairKey(e.Experiment, e.Iterations, e.MaxInsts, e.Benchmark, e.Config)
}

func pairKey(scope string, iterations int, maxInsts uint64, benchmark, config string) string {
	return fmt.Sprintf("%s\x00%d\x00%d\x00%s\x00%s", scope, iterations, maxInsts, benchmark, config)
}

// ResultStore abstracts where finished (benchmark, configuration) runs live.
// The sweep engine loads previously stored entries before executing anything
// — entries whose Key matches a planned job are served as resumed results —
// and appends every newly finished run. The default store is a JSONL
// checkpoint file (Options.Checkpoint); the simulation server injects a
// content-addressed cache shared across jobs instead (Options.Store).
// Implementations must be safe for concurrent Append calls.
type ResultStore interface {
	// Load returns the stored entries plus a count of corrupt records that
	// were skipped (e.g. a JSONL line truncated by a crash).
	Load() ([]CheckpointEntry, int, error)
	// Append durably records one finished run.
	Append(CheckpointEntry) error
}

// ProgressSink observes a sweep as it runs. Planned fires once per sweep,
// after resume and shard filtering decided what actually executes; PairDone
// fires for every pair simulated by this process, as its result lands.
// PairDone may be called concurrently from worker goroutines' result
// collector; implementations are invoked synchronously and should be quick.
type ProgressSink interface {
	// Planned reports the job accounting: the full grid size, pairs resumed
	// from the result store, pairs owned by other shards, and pairs this
	// process will execute.
	Planned(total, resumed, skippedShard, pending int)
	// PairDone reports one executed pair as its checkpoint entry.
	PairDone(CheckpointEntry)
}

// PairTimer is an optional extension of ProgressSink: a sink that also
// implements it receives each locally executed pair's wall-clock simulation
// time. Config-parallel batching makes exact per-pair time unobservable —
// members of one batch simulate interleaved — so the engine times the whole
// execution group and attributes an equal share to each member; scalar
// singletons get their true time. Implementations may be called concurrently
// from worker goroutines and should be quick. The interface is type-asserted
// at runtime, so existing ProgressSink implementations keep working unchanged.
type PairTimer interface {
	PairTimed(benchmark, config string, wall time.Duration)
}

// LoadCheckpointEntries reads a JSONL checkpoint file. A missing file is an
// empty checkpoint. Malformed lines (e.g. a line truncated when the writing
// process was killed, or one missing its identifying fields) are skipped so a
// checkpoint stays usable after any interruption; corrupt counts them so
// callers can warn — a silently shrinking checkpoint would otherwise look
// like completed work re-running for no reason.
func LoadCheckpointEntries(path string) (entries []CheckpointEntry, corrupt int, err error) {
	if path == "" {
		return nil, 0, nil
	}
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, 0, nil
		}
		return nil, 0, fmt.Errorf("experiments: reading checkpoint: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e CheckpointEntry
		if json.Unmarshal(line, &e) != nil || e.Benchmark == "" || e.Config == "" {
			corrupt++
			continue
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, corrupt, fmt.Errorf("experiments: reading checkpoint: %w", err)
	}
	return entries, corrupt, nil
}

// checkpointWriter appends finished jobs to the JSONL checkpoint file. Each
// append is one unbuffered write of a complete line (so every recorded pair
// reaches the OS before the job counts as checkpointed, and an interrupted
// sweep never re-runs finished work), and Close fsyncs before closing so a
// crash right after a clean shutdown cannot leave a truncated final line
// for the corrupt-line skipper to discard.
type checkpointWriter struct {
	mu sync.Mutex
	f  *os.File
}

func openCheckpoint(path string) (*checkpointWriter, error) {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("experiments: opening checkpoint: %w", err)
	}
	return &checkpointWriter{f: f}, nil
}

func (w *checkpointWriter) append(e CheckpointEntry) error {
	b, err := json.Marshal(e)
	if err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	_, err = w.f.Write(append(b, '\n'))
	return err
}

func (w *checkpointWriter) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// checkpointFileStore is the default ResultStore: entries resume from and
// append to one JSONL checkpoint file. The writer opens lazily, so a sweep
// that resumes everything never touches the file for writing.
type checkpointFileStore struct {
	path string
	mu   sync.Mutex
	w    *checkpointWriter
}

func (s *checkpointFileStore) Load() ([]CheckpointEntry, int, error) {
	return LoadCheckpointEntries(s.path)
}

// open makes the writer eagerly so a sweep with pending work rejects an
// unwritable checkpoint path before simulating anything, not after.
func (s *checkpointFileStore) open() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w != nil {
		return nil
	}
	w, err := openCheckpoint(s.path)
	if err != nil {
		return err
	}
	s.w = w
	return nil
}

func (s *checkpointFileStore) Append(e CheckpointEntry) error {
	if err := s.open(); err != nil {
		return err
	}
	s.mu.Lock()
	w := s.w
	s.mu.Unlock()
	return w.append(e)
}

func (s *checkpointFileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w == nil {
		return nil
	}
	err := s.w.Close()
	s.w = nil
	return err
}

// runSweep is the sweep engine behind every experiment: it runs each
// (benchmark, configuration) pair through the simulator using a worker pool,
// generating each benchmark's program once. Locally executed pairs of the
// same benchmark and window geometry run config-parallel — one batch
// simulation over the benchmark's shared trace (see pipeline.Batch and
// planGroups) — unless Options.NoBatch or NOSQ_NO_BATCH forces the scalar
// path; either way every pair's measurements are bit-identical, so grouping
// is invisible in every output.
//
// The job list is deterministic — benchmarks in the given order, configuration
// keys sorted — which makes two things possible. First, sharding: with
// opts.Shards > 1, only jobs whose list position i satisfies
// i % Shards == ShardIndex are run, so independent processes (or machines) can
// split one sweep without coordination (opts.Slice selects a contiguous
// position range instead — the coordinated, leased variant of the same idea). Second, resumption: every finished
// job is appended to the configured ResultStore (by default a JSONL
// checkpoint file, Options.Checkpoint), and pairs already present in the
// store are loaded instead of re-run. Entries are keyed by (experiment scope,
// iterations, max-insts, benchmark, configuration), so a shared store never
// serves runs across experiments or across workload lengths; shards pointed
// at a shared file (or at per-shard files later concatenated) merge into one
// result set.
//
// Planning and completion are observable through Options.Progress, and the
// store is injectable through Options.Store — the simulation server uses both
// to stream per-pair progress and share one content-addressed result cache
// across jobs.
//
// Cancelling ctx stops dispatching new jobs; in-flight simulations finish,
// are recorded in the store, and runSweep returns ctx.Err().
func runSweep(ctx context.Context, benchmarks []string, cfgs map[string]pipeline.Config, opts Options) (map[string]map[string]stats.Run, Summary, error) {
	var sum Summary
	if opts.Shards > 1 && (opts.ShardIndex < 0 || opts.ShardIndex >= opts.Shards) {
		return nil, sum, fmt.Errorf("experiments: shard index %d outside [0,%d)", opts.ShardIndex, opts.Shards)
	}
	if opts.Slice != nil && (opts.Slice.Start < 0 || opts.Slice.End < opts.Slice.Start) {
		return nil, sum, fmt.Errorf("experiments: invalid pair slice [%d,%d)", opts.Slice.Start, opts.Slice.End)
	}

	keys := make([]string, 0, len(cfgs))
	for k := range cfgs {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	jobs := make([]sweepJob, 0, len(benchmarks)*len(keys))
	for _, b := range benchmarks {
		for _, k := range keys {
			jobs = append(jobs, sweepJob{index: len(jobs), benchmark: b, key: k, cfg: cfgs[k]})
		}
	}
	sum.Total = len(jobs)

	out := make(map[string]map[string]stats.Run, len(benchmarks))
	for _, b := range benchmarks {
		out[b] = make(map[string]stats.Run, len(keys))
	}

	store := opts.Store
	var fileStore *checkpointFileStore
	if store == nil && opts.Checkpoint != "" {
		fileStore = &checkpointFileStore{path: opts.Checkpoint}
		store = fileStore
		defer fileStore.Close()
	}
	done := make(map[string]CheckpointEntry)
	if store != nil {
		entries, corrupt, err := store.Load()
		if err != nil {
			return nil, sum, err
		}
		sum.CorruptCheckpoint = corrupt
		if corrupt > 0 {
			name := opts.Checkpoint
			if name == "" {
				name = "result store"
			}
			fmt.Fprintf(os.Stderr, "warning: checkpoint %s: skipped %d corrupt line(s); the affected jobs will re-run\n",
				name, corrupt)
		}
		for _, e := range entries {
			done[e.Key()] = e
		}
	}
	var pending []sweepJob
	resumed := make(map[int]CheckpointEntry)
	for _, j := range jobs {
		if e, ok := done[pairKey(opts.scope, opts.Iterations, opts.MaxInsts, j.benchmark, j.key)]; ok {
			out[j.benchmark][j.key] = e.Run
			resumed[j.index] = e
			sum.Resumed++
			continue
		}
		if opts.Shards > 1 && j.index%opts.Shards != opts.ShardIndex {
			sum.SkippedShard++
			continue
		}
		if opts.Slice != nil && (j.index < opts.Slice.Start || j.index >= opts.Slice.End) {
			sum.SkippedShard++
			continue
		}
		pending = append(pending, j)
	}
	if opts.Progress != nil {
		opts.Progress.Planned(sum.Total, sum.Resumed, sum.SkippedShard, len(pending))
	}
	if len(pending) == 0 {
		return out, sum, ctx.Err()
	}
	// There is work to run: an unwritable checkpoint path must fail now,
	// before minutes of simulation whose results it was meant to persist.
	if fileStore != nil {
		if err := fileStore.open(); err != nil {
			return nil, sum, err
		}
	}

	// A configured Executor takes over raw pair execution (the distributed
	// coordinator leases pair slices to remote workers); the engine keeps
	// planning, the store, progress events, and result assembly, so reports
	// merge byte-identically to a locally executed run.
	if opts.Executor != nil {
		var mu sync.Mutex
		var firstErr error
		req := ExecRequest{
			Pending: make([]PairJob, len(pending)),
			Resumed: resumed,
		}
		for i, j := range pending {
			req.Pending[i] = PairJob{Index: j.index, Benchmark: j.benchmark, Config: j.key}
		}
		req.Emit = func(pj PairJob, run stats.Run) {
			mu.Lock()
			defer mu.Unlock()
			if _, dup := out[pj.Benchmark][pj.Config]; dup {
				return
			}
			out[pj.Benchmark][pj.Config] = run
			sum.Executed++
			e := CheckpointEntry{Experiment: opts.scope, Iterations: opts.Iterations, MaxInsts: opts.MaxInsts,
				Benchmark: pj.Benchmark, Config: pj.Config, Run: run}
			if store != nil {
				if werr := store.Append(e); werr != nil && firstErr == nil {
					firstErr = werr
				}
			}
			if opts.Progress != nil {
				opts.Progress.PairDone(e)
			}
		}
		execErr := opts.Executor(ctx, req)
		mu.Lock()
		defer mu.Unlock()
		if execErr == nil {
			execErr = firstErr
		}
		if execErr == nil {
			execErr = ctx.Err()
		}
		// Pairs the executor never delivered (its error names why) are the
		// distributed analogue of failed local simulations.
		sum.Failed = len(pending) - sum.Executed
		return out, sum, execErr
	}

	// Generate programs up front (cheap, single-threaded, deterministic),
	// only for benchmarks that still have pending work. Each benchmark's
	// dynamic instruction trace is then recorded once, on first use, and
	// shared read-only by every simulation of that benchmark. Trace-backed
	// benchmarks have no program to generate — their recorded file is the
	// trace — so they only contribute loaders.
	progs := make(map[string]*program.Program, len(benchmarks))
	loaders := make(map[string]func() (*emu.Trace, error), len(opts.traceLoaders))
	for _, j := range pending {
		if _, ok := progs[j.benchmark]; ok {
			continue
		}
		if _, ok := loaders[j.benchmark]; ok {
			continue
		}
		if load, ok := opts.traceLoaders[j.benchmark]; ok {
			loaders[j.benchmark] = load
			continue
		}
		p, err := opts.generateProgram(j.benchmark)
		if err != nil {
			return nil, sum, err
		}
		progs[j.benchmark] = p
	}
	traces := newTraceCache(progs, loaders, pending)

	// Partition the pending pairs into execution groups: same-benchmark,
	// same-geometry pairs run config-parallel as one batch over the shared
	// trace; singletons (and everything, under NoBatch) take the scalar path.
	// Grouping affects only how pairs are simulated — results, checkpoint
	// entries and progress events stay per-pair, so reports are byte-identical
	// to an ungrouped run.
	groups := planGroups(pending, opts.batchDisabled())
	for _, g := range groups {
		if len(g.jobs) > 1 {
			sum.BatchGroups++
			sum.BatchedPairs += len(g.jobs)
		}
	}

	workers := opts.workers()
	if workers > len(groups) {
		workers = len(groups)
	}
	groupCh := make(chan sweepGroup)
	resCh := make(chan sweepResult)
	timer, _ := opts.Progress.(PairTimer)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for g := range groupCh {
				start := time.Now()
				results := runGroup(g, traces, opts)
				// One batch simulates its members interleaved, so per-pair
				// wall time is the group's time split evenly.
				per := time.Since(start) / time.Duration(len(results))
				for _, r := range results {
					if timer != nil && r.err == nil {
						timer.PairTimed(r.job.benchmark, r.job.key, per)
					}
					resCh <- r
				}
			}
		}()
	}
	go func() {
		defer close(groupCh)
		for _, g := range groups {
			select {
			case groupCh <- g:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(resCh)
	}()

	var firstErr error
	for r := range resCh {
		if r.err != nil {
			sum.Failed++
			if firstErr == nil {
				firstErr = fmt.Errorf("%s/%s: %w", r.job.benchmark, r.job.key, r.err)
			}
			continue
		}
		out[r.job.benchmark][r.job.key] = r.run
		sum.Executed++
		e := CheckpointEntry{Experiment: opts.scope, Iterations: opts.Iterations, MaxInsts: opts.MaxInsts,
			Benchmark: r.job.benchmark, Config: r.job.key, Run: r.run}
		if store != nil {
			if werr := store.Append(e); werr != nil && firstErr == nil {
				firstErr = werr
			}
			if opts.afterCheckpoint != nil {
				opts.afterCheckpoint(sum.Executed)
			}
		}
		if opts.Progress != nil {
			opts.Progress.PairDone(e)
		}
	}
	if firstErr == nil {
		firstErr = ctx.Err()
	}
	return out, sum, firstErr
}

// SweepRow is one (benchmark, configuration, window) cell of the free-form
// sweep experiment.
type SweepRow struct {
	Benchmark string
	Suite     workload.Suite
	Config    string
	Window    int
	Cycles    uint64
	Committed uint64
	IPC       float64
	// CommPct is the percentage of committed loads with in-window
	// store-load communication.
	CommPct float64
	// Bypassed / Delayed count speculatively bypassed and delay-held loads.
	Bypassed uint64
	Delayed  uint64
	// MisPer10k is bypassing mis-predictions per 10,000 committed loads.
	MisPer10k float64
	Flushes   uint64
	// DCacheReads is total (core + back-end) data-cache reads.
	DCacheReads  uint64
	Reexecutions uint64
}

// dedup removes repeated grid values, keeping first-occurrence order, so a
// duplicated -windows/-configs entry cannot yield duplicate rows.
func dedup[T comparable](xs []T) []T {
	seen := make(map[T]bool, len(xs))
	out := xs[:0:0]
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

// sweepKinds resolves the sweep grid's configuration kinds (nil = all five).
func sweepKinds(names []string) ([]core.ConfigKind, error) {
	if len(names) == 0 {
		return core.Kinds(), nil
	}
	kinds := make([]core.ConfigKind, 0, len(names))
	for _, n := range names {
		k, err := core.KindByName(strings.TrimSpace(n))
		if err != nil {
			return nil, err
		}
		kinds = append(kinds, k)
	}
	return kinds, nil
}

// sweepKey names one grid cell; sorting these keys preserves the
// configuration-major, window-minor grid order within a benchmark.
func sweepKey(kind core.ConfigKind, window int) string {
	return fmt.Sprintf("%s@w%04d", kind, window)
}

// Sweep runs the free-form sweep experiment: every combination of
// opts.Configs (default: all five configuration kinds) × opts.Windows
// (default: the 128-entry window) × the benchmark set (default: the paper's
// selected benchmarks). Unlike the table/figure experiments, a sweep has no
// fixed presentation — it reports the raw per-run measurements, one row per
// grid cell, and is the intended vehicle for sharded and resumable bulk runs.
func Sweep(ctx context.Context, opts Options) (*Report, error) {
	opts.scope = "sweep"
	kinds, err := sweepKinds(opts.Configs)
	if err != nil {
		return nil, err
	}
	kinds = dedup(kinds)
	windows := opts.Windows
	if len(windows) == 0 {
		windows = []int{128}
	}
	windows = dedup(windows)
	for _, w := range windows {
		if w <= 0 {
			return nil, fmt.Errorf("experiments: invalid window size %d", w)
		}
	}
	benchmarks := defaultBenchmarks(opts, true)

	cfgs := make(map[string]pipeline.Config, len(kinds)*len(windows))
	for _, k := range kinds {
		for _, w := range windows {
			cfgs[sweepKey(k, w)] = core.ConfigFor(k, w)
		}
	}
	runs, sum, err := runSweep(ctx, benchmarks, cfgs, opts)
	if err != nil {
		return nil, err
	}

	var rows []SweepRow
	bySuite := orderedBySuite(benchmarks)
	for _, suite := range suiteOrder {
		for _, b := range bySuite[suite] {
			for _, k := range kinds {
				for _, w := range windows {
					run, ok := runs[b][sweepKey(k, w)]
					if !ok {
						continue // another shard's job
					}
					rows = append(rows, SweepRow{
						Benchmark:    b,
						Suite:        suite,
						Config:       k.String(),
						Window:       w,
						Cycles:       run.Cycles,
						Committed:    run.Committed,
						IPC:          run.IPC(),
						CommPct:      run.PctInWindowComm(),
						Bypassed:     run.BypassedLoads,
						Delayed:      run.DelayedLoads,
						MisPer10k:    run.MispredictsPer10kLoads(),
						Flushes:      run.Flushes,
						DCacheReads:  run.TotalDCacheReads(),
						Reexecutions: run.Reexecutions,
					})
				}
			}
		}
	}

	tbl := stats.NewTable("Sweep: raw measurements per (benchmark, configuration, window)",
		"benchmark", "suite", "config", "window", "cycles", "committed", "IPC",
		"comm%", "bypassed", "delayed", "mispred/10k", "flushes", "D$ reads", "reexec")
	for _, r := range rows {
		tbl.AddRow(r.Benchmark, r.Suite.String(), r.Config, r.Window, r.Cycles, r.Committed,
			r.IPC, r.CommPct, r.Bypassed, r.Delayed, r.MisPer10k, r.Flushes, r.DCacheReads, r.Reexecutions)
	}

	rep := report("sweep", tbl, rows, sum)
	kindNames := make([]string, len(kinds))
	for i, k := range kinds {
		kindNames[i] = k.String()
	}
	windowNames := make([]string, len(windows))
	for i, w := range windows {
		windowNames[i] = strconv.Itoa(w)
	}
	rep.AddMeta("configs", strings.Join(kindNames, ","))
	rep.AddMeta("windows", strings.Join(windowNames, ","))
	rep.AddMeta("benchmarks", len(benchmarks))
	if opts.Shards > 1 {
		rep.AddMeta("shard", fmt.Sprintf("%d/%d", opts.ShardIndex, opts.Shards))
	}
	return rep, nil
}
