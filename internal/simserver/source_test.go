package simserver

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/emu"
	"repro/internal/experiments"
	"repro/internal/simapi"
	"repro/internal/simclient"
	"repro/internal/traceio"
	"repro/internal/workload"
)

// rawTestServer exposes the HTTP surface directly, for tests that must speak
// raw JSON (legacy encodings, malformed sources) instead of typed specs.
func rawTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.CodeRev == "" {
		cfg.CodeRev = "test-rev"
	}
	srv, _, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return srv, hs
}

func postJSON(t *testing.T, url, body string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp, string(b)
}

// TestSourceEncodingsShareIdentity pins the upgrade contract: a legacy flat
// spec and its source-union equivalent are the same job — identical dedup
// hash, so the second submission collapses onto the first.
func TestSourceEncodingsShareIdentity(t *testing.T) {
	scn := &workload.Scenario{Name: "test/dedup", Iterations: 10}
	pairs := []struct {
		name          string
		legacy, union simapi.JobSpec
	}{
		{
			"benchmarks",
			simapi.JobSpec{Experiment: "sweep", Benchmarks: []string{"gzip"}, Iterations: 10},
			simapi.JobSpec{Experiment: "sweep", Iterations: 10, Source: simclient.BenchmarkSource("gzip")},
		},
		{
			"scenario",
			simapi.JobSpec{Experiment: "scenario", Scenario: scn, Iterations: 10},
			simapi.JobSpec{Experiment: "scenario", Iterations: 10, Source: simclient.ScenarioSource(*scn)},
		},
	}
	for _, p := range pairs {
		t.Run(p.name, func(t *testing.T) {
			l, u := p.legacy, p.union
			if err := l.Normalize(); err != nil {
				t.Fatal(err)
			}
			if err := u.Normalize(); err != nil {
				t.Fatal(err)
			}
			lh, err := specHash(l)
			if err != nil {
				t.Fatal(err)
			}
			uh, err := specHash(u)
			if err != nil {
				t.Fatal(err)
			}
			if lh != uh {
				t.Fatalf("legacy hash %s != union hash %s", lh, uh)
			}

			// Service-level dedup: workers never started, so the first job
			// stays queued and the union twin must collapse onto it.
			srv, _ := rawTestServer(t, Config{Workers: 1})
			first, err := srv.Submit(p.legacy, "")
			if err != nil {
				t.Fatal(err)
			}
			second, err := srv.Submit(p.union, "")
			if err != nil {
				t.Fatal(err)
			}
			if !second.Deduped || second.ID != first.ID {
				t.Fatalf("union twin did not dedup onto legacy job: first=%+v second=%+v", first, second)
			}
		})
	}
}

// TestSubmitSourceValidation drives the HTTP surface with raw JSON: the
// legacy flat encoding still lands, and malformed sources are 400s.
func TestSubmitSourceValidation(t *testing.T) {
	_, hs := rawTestServer(t, Config{Workers: 1})
	url := hs.URL + "/api/v1/jobs"

	resp, body := postJSON(t, url, `{"experiment":"sweep","benchmarks":["gzip"],"iterations":10}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("legacy submission returned %d: %s", resp.StatusCode, body)
	}
	var info simapi.JobInfo
	if err := json.Unmarshal([]byte(body), &info); err != nil {
		t.Fatal(err)
	}
	if info.Spec.Source == nil || info.Spec.Source.Kind != simapi.SourceBenchmark ||
		len(info.Spec.Benchmarks) != 0 {
		t.Errorf("accepted job's spec was not normalized to union form: %+v", info.Spec)
	}

	cases := []struct {
		name, body, want string
	}{
		{"unknown kind",
			`{"experiment":"sweep","source":{"kind":"binary"}}`,
			"unknown source kind"},
		{"trace source on wrong experiment",
			`{"experiment":"sweep","source":{"kind":"trace","traces":["gzip-0123456789abcdef"]}}`,
			"only applies to the trace experiment"},
		{"source plus legacy fields",
			`{"experiment":"sweep","benchmarks":["gzip"],"source":{"kind":"benchmark","benchmarks":["gzip"]}}`,
			"both source and legacy"},
		{"scenario source on wrong experiment",
			`{"experiment":"sweep","source":{"kind":"scenario","scenario":{"name":"s","iterations":5}}}`,
			"only applies to the scenario experiment"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, body := postJSON(t, url, c.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400 (%s)", resp.StatusCode, body)
			}
			if !strings.Contains(body, c.want) {
				t.Errorf("error %q does not mention %q", body, c.want)
			}
		})
	}
}

// TestHealthMetricsRoutes pins the /api/v1 move: the canonical prefixed
// routes serve the documents plainly, the unprefixed legacy aliases still
// work but announce their deprecation, and both land in one histogram
// series under the historical route label.
func TestHealthMetricsRoutes(t *testing.T) {
	_, hs := rawTestServer(t, Config{Workers: 1})

	get := func(path string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp, string(b)
	}

	for _, path := range []string{"/api/v1/healthz", "/api/v1/metricsz"} {
		resp, body := get(path)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d: %s", path, resp.StatusCode, body)
		}
		if resp.Header.Get("Deprecation") != "" {
			t.Errorf("canonical route %s carries a Deprecation header", path)
		}
	}
	for legacy, successor := range map[string]string{
		"/healthz":  "/api/v1/healthz",
		"/metricsz": "/api/v1/metricsz",
	} {
		resp, body := get(legacy)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d: %s", legacy, resp.StatusCode, body)
		}
		if resp.Header.Get("Deprecation") != "true" {
			t.Errorf("legacy route %s missing Deprecation header", legacy)
		}
		if link := resp.Header.Get("Link"); !strings.Contains(link, successor) {
			t.Errorf("legacy route %s Link header %q does not name %s", legacy, link, successor)
		}
		// Alias and canonical must serve the same document shape (the bodies
		// themselves differ in live gauges like uptime).
		canon, canonBody := get(successor)
		var legacyDoc, canonDoc map[string]any
		if canon.StatusCode != http.StatusOK ||
			json.Unmarshal([]byte(body), &legacyDoc) != nil ||
			json.Unmarshal([]byte(canonBody), &canonDoc) != nil ||
			len(legacyDoc) != len(canonDoc) {
			t.Errorf("%s and %s serve different documents", legacy, successor)
		}
		for k := range legacyDoc {
			if _, ok := canonDoc[k]; !ok {
				t.Errorf("%s document lacks %q, which %s serves", successor, k, legacy)
			}
		}
	}

	// Histogram labels: both spellings observed above must fold into the
	// historical label; the /api/v1 spelling must not mint a new series.
	_, prom := get("/api/v1/metricsz?format=prometheus")
	if !strings.Contains(prom, `route="GET /healthz"`) {
		t.Errorf("prometheus exposition lost the historical route label:\n%.2000s", prom)
	}
	if strings.Contains(prom, `route="GET /api/v1/healthz"`) ||
		strings.Contains(prom, `route="GET /api/v1/metricsz"`) {
		t.Errorf("prometheus exposition minted new labels for the /api/v1 aliases")
	}
}

// TestServerTraceJobs runs a recorded trace through the service: the job's
// report is byte-identical to the library path's, and an identical
// re-submission is served entirely from the result cache.
func TestServerTraceJobs(t *testing.T) {
	// The trace experiment reads DefaultTraceDir relative to the process
	// working directory (the spec deliberately carries no paths), so stage a
	// corpus there.
	root := t.TempDir()
	dir := filepath.Join(root, experiments.DefaultTraceDir)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	p, err := workload.Generate("gzip", workload.Options{Iterations: 25})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := emu.RecordTrace(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := traceio.WriteFile(filepath.Join(dir, "tmp.nsqt"), tr)
	if err != nil {
		t.Fatal(err)
	}
	m := traceio.NewManifest(sum, "workload:gzip iters=25", "test")
	if err := os.Rename(filepath.Join(dir, "tmp.nsqt"), filepath.Join(dir, m.TraceFilename())); err != nil {
		t.Fatal(err)
	}
	if _, err := traceio.WriteEntry(dir, m); err != nil {
		t.Fatal(err)
	}
	t.Chdir(root)

	spec := simapi.JobSpec{
		Experiment: "trace",
		Source:     simclient.TraceSource(m.RefName()),
		Configs:    []string{"nosq-delay", "perfect-smb"},
	}
	const wantPairs = 2

	directRep, err := func() (*experiments.Report, error) {
		exp, err := experiments.Lookup("trace")
		if err != nil {
			return nil, err
		}
		return exp.Run(context.Background(), spec.Options())
	}()
	if err != nil {
		t.Fatal(err)
	}
	directCSV, err := directRep.Render("csv")
	if err != nil {
		t.Fatal(err)
	}

	srv, hs := rawTestServer(t, Config{Workers: 1, Parallelism: 2})
	srv.Start()
	c := simclient.New(hs.URL, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	info, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if info, err = c.Wait(ctx, info.ID); err != nil {
		t.Fatal(err)
	}
	if info.State != simapi.StateDone || info.ExecutedPairs != wantPairs || info.CachedPairs != 0 {
		t.Fatalf("first trace job = %+v, want %d executed pairs", info, wantPairs)
	}
	got, err := c.Report(ctx, info.ID, "csv")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != directCSV {
		t.Fatalf("server trace report differs from library path:\n--- server ---\n%s\n--- direct ---\n%s", got, directCSV)
	}

	// Identical spec again: every pair from the result cache.
	again, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if again, err = c.Wait(ctx, again.ID); err != nil {
		t.Fatal(err)
	}
	if again.State != simapi.StateDone || again.ExecutedPairs != 0 || again.CachedPairs != wantPairs {
		t.Fatalf("identical trace re-run = %+v, want fully cache-served", again)
	}
}
