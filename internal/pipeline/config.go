// Package pipeline implements the cycle-level timing model of the simulated
// out-of-order processor, in both its conventional (associative store queue)
// and NoSQ organisations.
//
// The model is an oracle-path execution-driven simulator: the functional
// emulator supplies the committed dynamic instruction stream, the timing
// model fetches along that path, and mis-speculation (branch mispredictions,
// premature loads, bypassing mis-predictions) is charged by stalling or by
// squashing younger in-flight work and re-fetching it. The mechanisms the
// paper studies — store-load forwarding through an associative store queue,
// StoreSets scheduling, speculative memory bypassing, the NoSQ bypassing
// predictor, delay, SVW-filtered in-order load re-execution, and the
// lengthened NoSQ commit pipeline — are modelled structurally.
//
// Two execution engines run that model. A solo Simulator steps one
// (trace, configuration) pair cycle by cycle. Batch is the config-parallel
// engine: all configurations of one benchmark replay a single shared
// recorded trace (emu.Trace plus a pre-decoded TraceMeta) in interleaved
// instruction quanta, so the trace and its metadata are streamed through
// the cache once per benchmark instead of once per configuration, and the
// event-driven issue scheduler (sched.go) replaces the oldest-first scan.
// Batching is a pure execution strategy: every member performs exactly the
// per-cycle step sequence of a solo Simulator, so its statistics are
// bit-identical to a solo run of the same pair — the property the CI
// bit-identity job enforces. The policy deciding which pairs are grouped
// into a batch lives in internal/experiments; the off switches are the
// CLIs' -no-batch flag and the NOSQ_NO_BATCH environment variable.
package pipeline

import (
	"fmt"

	"repro/internal/bpred"
	"repro/internal/bypass"
	"repro/internal/cache"
	"repro/internal/storesets"
)

// LSQPolicy selects how in-flight store-load communication is performed.
type LSQPolicy int

const (
	// LSQAssociative is the conventional design: stores execute out-of-order
	// into an associative store queue that loads search for forwarding.
	LSQAssociative LSQPolicy = iota
	// LSQNone is NoSQ: there is no store queue; stores do not execute in the
	// out-of-order core and all in-flight communication uses SMB.
	LSQNone
)

// String implements fmt.Stringer.
func (p LSQPolicy) String() string {
	switch p {
	case LSQAssociative:
		return "associative-sq"
	case LSQNone:
		return "nosq"
	default:
		return fmt.Sprintf("lsq?%d", int(p))
	}
}

// SchedPolicy selects the baseline's load scheduling policy.
type SchedPolicy int

const (
	// SchedNaive issues loads as soon as their address register is ready.
	SchedNaive SchedPolicy = iota
	// SchedStoreSets holds loads for stores predicted by StoreSets.
	SchedStoreSets
	// SchedPerfect holds loads exactly until their true communicating store
	// has executed (oracle scheduling, the paper's idealised baseline).
	SchedPerfect
)

// String implements fmt.Stringer.
func (p SchedPolicy) String() string {
	switch p {
	case SchedNaive:
		return "naive"
	case SchedStoreSets:
		return "storesets"
	case SchedPerfect:
		return "perfect"
	default:
		return fmt.Sprintf("sched?%d", int(p))
	}
}

// BypassPolicy selects the speculative-memory-bypassing mode.
type BypassPolicy int

const (
	// BypassNone disables SMB (conventional designs).
	BypassNone BypassPolicy = iota
	// BypassPredictor uses the NoSQ distance-based bypassing predictor.
	BypassPredictor
	// BypassPerfect is the idealised configuration: a perfect bypassing
	// predictor with idealised partial-word support ("Perfect SMB").
	BypassPerfect
)

// String implements fmt.Stringer.
func (p BypassPolicy) String() string {
	switch p {
	case BypassNone:
		return "none"
	case BypassPredictor:
		return "predictor"
	case BypassPerfect:
		return "perfect"
	default:
		return fmt.Sprintf("bypass?%d", int(p))
	}
}

// Config describes one simulated machine.
type Config struct {
	// Name labels the configuration in results.
	Name string

	// FetchWidth..CommitWidth are per-cycle stage widths.
	FetchWidth  int
	RenameWidth int
	IssueWidth  int
	CommitWidth int

	// ROBSize is the instruction window size (128 or 256 in the paper).
	ROBSize int
	// IQSize is the issue-queue capacity.
	IQSize int
	// LQSize is the load-queue capacity (ignored when the configuration
	// eliminates the load queue).
	LQSize int
	// SQSize is the store-queue capacity (associative configurations only).
	SQSize int
	// PhysRegs is the total number of physical registers (architectural +
	// renameable).
	PhysRegs int

	// FrontEndDepth is the number of cycles from fetch to rename
	// (predict + fetch + decode stages).
	FrontEndDepth int
	// BackendDepth is the in-order back-end (commit pipeline) depth:
	// 6 for the baseline, 8 for NoSQ.
	BackendDepth int
	// BackendDCacheStage is the offset of the data-cache stage within the
	// back-end pipeline (store writes become visible then).
	BackendDCacheStage int

	// DCacheLatency, L2Latency and MemLatency are load-to-use latencies in
	// cycles for L1 hits, L2 hits and memory accesses.
	DCacheLatency int
	L2Latency     int
	MemLatency    int

	// Issue port counts per cycle.
	SimpleIntPorts int
	ComplexPorts   int
	BranchPorts    int
	LoadPorts      int
	StorePorts     int

	// LSQ selects conventional forwarding vs NoSQ.
	LSQ LSQPolicy
	// Sched selects the baseline load-scheduling policy (ignored under NoSQ,
	// which has no load scheduler).
	Sched SchedPolicy
	// Bypass selects the SMB mode.
	Bypass BypassPolicy
	// Delay enables NoSQ's confidence-driven delay mechanism.
	Delay bool

	// BPred configures the branch predictor.
	BPred bpred.Config
	// StoreSets configures the baseline's dependence predictor.
	StoreSets storesets.Config
	// BypassPred configures the NoSQ bypassing predictor.
	BypassPred bypass.Config

	// TSSBFEntries and TSSBFAssoc configure the SVW filter.
	TSSBFEntries int
	TSSBFAssoc   int

	// L1I, L1D and L2 configure the caches.
	L1I cache.Config
	L1D cache.Config
	L2  cache.Config
	// ITLBEntries/DTLBEntries/TLBAssoc configure the TLBs.
	ITLBEntries int
	DTLBEntries int
	TLBAssoc    int

	// MaxInsts bounds the number of committed instructions (0 = run the
	// workload to completion).
	MaxInsts uint64
	// MaxCycles bounds simulation length as a safety net.
	MaxCycles uint64
}

// DefaultConfig returns the paper's baseline machine (Section 4.1) with an
// associative store queue and StoreSets load scheduling.
func DefaultConfig() Config {
	return Config{
		Name:        "baseline",
		FetchWidth:  4,
		RenameWidth: 4,
		IssueWidth:  4,
		CommitWidth: 4,

		ROBSize:  128,
		IQSize:   40,
		LQSize:   48,
		SQSize:   24,
		PhysRegs: 160,

		FrontEndDepth:      5, // 1 predict + 3 fetch + 1 decode
		BackendDepth:       6, // setup, SVW, 3x dcache, commit
		BackendDCacheStage: 4,

		DCacheLatency: 3,
		L2Latency:     10,
		MemLatency:    150,

		SimpleIntPorts: 4,
		ComplexPorts:   2,
		BranchPorts:    1,
		LoadPorts:      1,
		StorePorts:     1,

		LSQ:    LSQAssociative,
		Sched:  SchedStoreSets,
		Bypass: BypassNone,
		Delay:  false,

		BPred:      bpred.DefaultConfig(),
		StoreSets:  storesets.DefaultConfig(),
		BypassPred: bypass.DefaultConfig(),

		TSSBFEntries: 128,
		TSSBFAssoc:   4,

		L1I: cache.Config{Name: "L1I", SizeBytes: 64 * 1024, LineBytes: 64, Assoc: 2},
		L1D: cache.Config{Name: "L1D", SizeBytes: 64 * 1024, LineBytes: 64, Assoc: 2},
		L2:  cache.Config{Name: "L2", SizeBytes: 1024 * 1024, LineBytes: 64, Assoc: 8},

		ITLBEntries: 128,
		DTLBEntries: 128,
		TLBAssoc:    4,

		MaxCycles: 2_000_000_000,
	}
}

// IdealBaselineConfig returns the normalisation baseline of Figures 2 and 3:
// an associative store queue with perfect (oracle) load scheduling.
func IdealBaselineConfig() Config {
	c := DefaultConfig()
	c.Name = "ideal-baseline"
	c.Sched = SchedPerfect
	return c
}

// BaselineConfig returns the realistic conventional configuration:
// associative store queue with StoreSets load scheduling.
func BaselineConfig() Config {
	c := DefaultConfig()
	c.Name = "assoc-sq-storesets"
	return c
}

// NoSQConfig returns the NoSQ machine. delay selects the confidence-driven
// delay mechanism (the paper's "NoSQ (with delay)" vs "NoSQ (no delay)").
func NoSQConfig(delay bool) Config {
	c := DefaultConfig()
	if delay {
		c.Name = "nosq-delay"
	} else {
		c.Name = "nosq-nodelay"
	}
	c.LSQ = LSQNone
	c.Sched = SchedNaive
	c.Bypass = BypassPredictor
	c.Delay = delay
	c.BackendDepth = 8 // setup, 2x regread, agen/SVW, 3x dcache, commit
	c.BackendDCacheStage = 6
	return c
}

// PerfectSMBConfig returns the idealised NoSQ configuration with a perfect
// bypassing predictor and idealised partial-word support.
func PerfectSMBConfig() Config {
	c := NoSQConfig(true)
	c.Name = "perfect-smb"
	c.Bypass = BypassPerfect
	c.Delay = false
	return c
}

// WithWindow returns a copy of the configuration scaled to the given
// instruction-window size. Following Section 4.4, all window resources scale
// with the window and the branch predictor is quadrupled when the window is
// doubled, but the NoSQ bypassing predictor is left unchanged.
func (c Config) WithWindow(robSize int) Config {
	if robSize <= 0 || robSize == c.ROBSize {
		return c
	}
	factor := float64(robSize) / float64(c.ROBSize)
	scale := func(v int) int {
		n := int(float64(v)*factor + 0.5)
		if n < 1 {
			n = 1
		}
		return n
	}
	c.IQSize = scale(c.IQSize)
	c.LQSize = scale(c.LQSize)
	c.SQSize = scale(c.SQSize)
	c.PhysRegs = scale(c.PhysRegs)
	bpredFactor := int(factor*factor + 0.5)
	if bpredFactor < 1 {
		bpredFactor = 1
	}
	c.BPred = c.BPred.Scale(bpredFactor)
	c.ROBSize = robSize
	c.Name = fmt.Sprintf("%s-w%d", c.Name, robSize)
	return c
}

// Validate checks the configuration for consistency.
func (c Config) Validate() error {
	type check struct {
		name string
		v    int
	}
	for _, ch := range []check{
		{"FetchWidth", c.FetchWidth}, {"RenameWidth", c.RenameWidth},
		{"IssueWidth", c.IssueWidth}, {"CommitWidth", c.CommitWidth},
		{"ROBSize", c.ROBSize}, {"IQSize", c.IQSize}, {"PhysRegs", c.PhysRegs},
		{"FrontEndDepth", c.FrontEndDepth}, {"BackendDepth", c.BackendDepth},
		{"DCacheLatency", c.DCacheLatency}, {"L2Latency", c.L2Latency}, {"MemLatency", c.MemLatency},
		{"TSSBFEntries", c.TSSBFEntries}, {"TSSBFAssoc", c.TSSBFAssoc},
	} {
		if ch.v <= 0 {
			return fmt.Errorf("pipeline: %s must be positive, got %d", ch.name, ch.v)
		}
	}
	if c.LSQ == LSQAssociative && c.SQSize <= 0 {
		return fmt.Errorf("pipeline: associative store queue requires SQSize > 0")
	}
	if c.LSQ == LSQAssociative && c.LQSize <= 0 {
		return fmt.Errorf("pipeline: conventional design requires LQSize > 0")
	}
	if c.PhysRegs <= 64 {
		return fmt.Errorf("pipeline: PhysRegs %d must exceed the 64 architectural registers", c.PhysRegs)
	}
	if c.BackendDCacheStage <= 0 || c.BackendDCacheStage >= c.BackendDepth {
		return fmt.Errorf("pipeline: BackendDCacheStage %d must be inside the %d-stage back-end", c.BackendDCacheStage, c.BackendDepth)
	}
	if err := c.BPred.Validate(); err != nil {
		return err
	}
	if err := c.StoreSets.Validate(); err != nil {
		return err
	}
	if err := c.BypassPred.Validate(); err != nil {
		return err
	}
	for _, cc := range []cache.Config{c.L1I, c.L1D, c.L2} {
		if err := cc.Validate(); err != nil {
			return err
		}
	}
	if c.LSQ == LSQNone && c.Bypass == BypassNone {
		return fmt.Errorf("pipeline: NoSQ requires a bypassing mode")
	}
	return nil
}
