package core

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/program"
)

func TestKindStringsAndParse(t *testing.T) {
	for _, k := range Kinds() {
		name := k.String()
		if name == "" {
			t.Fatalf("kind %d has empty name", k)
		}
		parsed, err := KindByName(name)
		if err != nil || parsed != k {
			t.Errorf("KindByName(%q) = %v, %v", name, parsed, err)
		}
	}
	if _, err := KindByName("bogus"); err == nil {
		t.Error("bogus configuration accepted")
	}
}

func TestConfigForWindow(t *testing.T) {
	cfg := ConfigFor(NoSQDelay, 256)
	if cfg.ROBSize != 256 {
		t.Errorf("ROBSize = %d, want 256", cfg.ROBSize)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("scaled config invalid: %v", err)
	}
	if got := ConfigFor(Baseline, 0).ROBSize; got != 128 {
		t.Errorf("default window = %d, want 128", got)
	}
}

func TestSimulateBenchmark(t *testing.T) {
	run, err := Simulate("gsm.e", NoSQDelay, Options{Iterations: 20})
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if run.Committed == 0 || run.Cycles == 0 {
		t.Errorf("empty run: %+v", run)
	}
	if run.Benchmark != "gsm.e" || run.Config != "nosq-delay" {
		t.Errorf("metadata: %q/%q", run.Benchmark, run.Config)
	}
}

func TestSimulateUnknownBenchmark(t *testing.T) {
	if _, err := Simulate("nope", Baseline, Options{}); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestSimulateMaxInsts(t *testing.T) {
	run, err := Simulate("gzip", Baseline, Options{Iterations: 200, MaxInsts: 500})
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if run.Committed != 500 {
		t.Errorf("committed %d, want 500", run.Committed)
	}
}

func TestSimulateProgramCustom(t *testing.T) {
	b := program.NewBuilder("tiny")
	r1, r2 := isa.IntReg(1), isa.IntReg(2)
	b.MovImm(r1, int64(program.DataBase)).
		MovImm(r2, 99).
		Store(r2, r1, 0, 8).
		Load(isa.IntReg(3), r1, 0, 8).
		Halt()
	run, err := SimulateProgram(b.MustBuild(), ConfigFor(NoSQDelay, 0))
	if err != nil {
		t.Fatalf("SimulateProgram: %v", err)
	}
	if run.CommittedLoads != 1 || run.CommittedStores != 1 {
		t.Errorf("loads/stores = %d/%d", run.CommittedLoads, run.CommittedStores)
	}
}

func TestBenchmarkLists(t *testing.T) {
	if len(Benchmarks()) != 47 {
		t.Errorf("Benchmarks() returned %d names", len(Benchmarks()))
	}
	if len(SelectedBenchmarks()) == 0 {
		t.Error("SelectedBenchmarks() empty")
	}
}
