//go:build integration

package main

import (
	"bufio"
	"bytes"
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/simapi"
	"repro/internal/simclient"
)

// TestServerIntegration boots the real nosq-server binary on a random port,
// submits a small fig2 job through the typed client, and asserts that an
// identical re-submission is served entirely from the result cache — zero
// pairs re-simulated, /metricsz hit counter up — before shutting the server
// down gracefully. Run with: go test -tags integration ./cmd/nosq-server
func TestServerIntegration(t *testing.T) {
	dir := t.TempDir()
	bin := filepath.Join(dir, "nosq-server")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building nosq-server: %v\n%s", err, out)
	}

	cachePath := filepath.Join(dir, "cache.jsonl")
	srv := exec.Command(bin, "-addr", "127.0.0.1:0", "-cache", cachePath, "-workers", "1")
	var stderr bytes.Buffer
	srv.Stderr = &stderr
	stdout, err := srv.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	var waitErr error
	exited := make(chan struct{})
	go func() { waitErr = srv.Wait(); close(exited) }()
	defer func() {
		select {
		case <-exited: // already down
		default:
			srv.Process.Kill()
			<-exited
		}
	}()

	// The first stdout line announces the resolved address of port 0.
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("no listen line on stdout; stderr:\n%s", stderr.String())
	}
	line := sc.Text()
	i := strings.Index(line, "http://")
	if i < 0 {
		t.Fatalf("unexpected listen line %q", line)
	}
	baseURL := strings.TrimSpace(line[i:])
	c := simclient.New(baseURL, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	if _, err := c.Health(ctx); err != nil {
		t.Fatalf("healthz: %v", err)
	}

	spec := simapi.JobSpec{Experiment: "fig2", Benchmarks: []string{"gzip", "applu"}, Iterations: 15}
	first, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	first, err = c.Wait(ctx, first.ID)
	if err != nil {
		t.Fatal(err)
	}
	if first.State != simapi.StateDone || first.ExecutedPairs == 0 || first.CachedPairs != 0 {
		t.Fatalf("first job = %+v, want fully executed", first)
	}
	firstCSV, err := c.Report(ctx, first.ID, "csv")
	if err != nil {
		t.Fatal(err)
	}

	// The cached re-submit: a fresh job that simulates nothing.
	second, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if second.Deduped {
		t.Fatalf("re-submission after completion deduped: %+v", second)
	}
	second, err = c.Wait(ctx, second.ID)
	if err != nil {
		t.Fatal(err)
	}
	if second.State != simapi.StateDone {
		t.Fatalf("second job = %+v", second)
	}
	if second.ExecutedPairs != 0 || second.CachedPairs != first.ExecutedPairs {
		t.Fatalf("re-submit executed %d / cached %d pairs, want 0/%d (re-simulated instead of cache hit)",
			second.ExecutedPairs, second.CachedPairs, first.ExecutedPairs)
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.CacheHits != uint64(first.ExecutedPairs) || m.CacheMisses != uint64(first.ExecutedPairs) {
		t.Fatalf("metrics hits/misses = %d/%d, want %d/%d",
			m.CacheHits, m.CacheMisses, first.ExecutedPairs, first.ExecutedPairs)
	}
	secondCSV, err := c.Report(ctx, second.ID, "csv")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(firstCSV, secondCSV) {
		t.Error("cache-served report differs from the executed run")
	}

	// Graceful shutdown: SIGTERM, clean exit, cache file persisted.
	if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-exited:
		if waitErr != nil {
			t.Fatalf("server exited uncleanly: %v\nstderr:\n%s", waitErr, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not exit on SIGTERM")
	}
	if fi, err := os.Stat(cachePath); err != nil || fi.Size() == 0 {
		t.Fatalf("result cache not persisted: %v", err)
	}
}
