package perf

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
)

// tinyRun measures a minimal grid quickly for tests.
func tinyRun(t *testing.T) *Result {
	t.Helper()
	res, err := Run(Options{
		Benchmarks: []string{"gzip"},
		Kinds:      []core.ConfigKind{core.Baseline, core.NoSQDelay},
		Iterations: 20,
		Repeats:    1,
		Revision:   "test",
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunProducesEntriesAndSummaries(t *testing.T) {
	res := tinyRun(t)
	if len(res.Entries) != 2 {
		t.Fatalf("entries = %d, want 2", len(res.Entries))
	}
	for _, e := range res.Entries {
		if e.Instructions == 0 || e.Cycles == 0 {
			t.Errorf("%s/%s: empty measurement %+v", e.Benchmark, e.Config, e)
		}
		if e.InstsPerSec <= 0 || e.NsPerCycle <= 0 {
			t.Errorf("%s/%s: non-positive rates %+v", e.Benchmark, e.Config, e)
		}
	}
	if len(res.Configs) != 2 {
		t.Fatalf("config summaries = %d, want 2", len(res.Configs))
	}
	if res.OverallInstsPerSec <= 0 {
		t.Fatalf("overall throughput = %v, want > 0", res.OverallInstsPerSec)
	}
}

func TestRunMeasuresBatch(t *testing.T) {
	res := tinyRun(t)
	if res.BatchWidth != 2 {
		t.Fatalf("BatchWidth = %d, want 2", res.BatchWidth)
	}
	if len(res.BatchEntries) != 1 {
		t.Fatalf("batch entries = %d, want 1 (one per benchmark)", len(res.BatchEntries))
	}
	be := res.BatchEntries[0]
	if be.Width != 2 || be.Instructions == 0 || be.InstsPerSec <= 0 || be.Speedup <= 0 {
		t.Errorf("batch entry = %+v, want a populated width-2 measurement", be)
	}
	if res.BatchInstsPerSec <= 0 || res.BatchSpeedup <= 0 {
		t.Errorf("batch summary: insts/sec %v, speedup %v, want > 0", res.BatchInstsPerSec, res.BatchSpeedup)
	}
	// A single-kind run has nothing to batch.
	solo, err := Run(Options{Benchmarks: []string{"gzip"}, Kinds: []core.ConfigKind{core.Baseline},
		Iterations: 20, Repeats: 1, Revision: "test"})
	if err != nil {
		t.Fatal(err)
	}
	if solo.BatchWidth != 0 || len(solo.BatchEntries) != 0 {
		t.Errorf("single-kind run recorded a batch measurement: %+v", solo.BatchEntries)
	}
}

func TestCompareGatesBatchOnlyWhenBothHaveIt(t *testing.T) {
	base := &Result{Schema: Schema, OverallInstsPerSec: 1000,
		BatchWidth: 5, BatchInstsPerSec: 5000}
	cur := &Result{Schema: Schema, OverallInstsPerSec: 1000,
		BatchWidth: 5, BatchInstsPerSec: 3000}
	regs := Compare(base, cur, 20)
	if len(regs) != 1 || regs[0].Config != "batch" {
		t.Fatalf("regressions = %v, want exactly the batch throughput drop", regs)
	}
	// A baseline recorded before the batch engine existed carries no batch
	// numbers; the current result's must not be gated against zero.
	old := &Result{Schema: Schema, OverallInstsPerSec: 1000}
	if regs := Compare(old, cur, 20); len(regs) != 0 {
		t.Fatalf("batchless baseline produced regressions: %v", regs)
	}
	// And a differing width makes the numbers incomparable.
	narrow := &Result{Schema: Schema, OverallInstsPerSec: 1000,
		BatchWidth: 2, BatchInstsPerSec: 9000}
	if regs := Compare(narrow, cur, 20); len(regs) != 0 {
		t.Fatalf("width-mismatched batch gated: %v", regs)
	}
}

func TestMarkdownSummaryDeltasAndImprovementFlag(t *testing.T) {
	base := &Result{Schema: Schema, Revision: "base",
		Configs:            []ConfigSummary{{Config: "a", InstsPerSec: 1000, AllocsPerKInst: 10}},
		OverallInstsPerSec: 1000, BatchWidth: 5, BatchInstsPerSec: 4000, BatchSpeedup: 1.3}
	cur := &Result{Schema: Schema, Revision: "cur",
		Configs:            []ConfigSummary{{Config: "a", InstsPerSec: 1500, AllocsPerKInst: 10}},
		OverallInstsPerSec: 1500, BatchWidth: 5, BatchInstsPerSec: 6000, BatchSpeedup: 1.6}
	md := MarkdownSummary(base, cur, 20)
	for _, want := range []string{"| a | 1500 | +50.0% |", "batch (width 5)", "1.60x vs scalar",
		"BENCH_baseline.json", "a, overall, batch"} {
		if !strings.Contains(md, want) {
			t.Errorf("summary missing %q:\n%s", want, md)
		}
	}
	// Within-threshold changes carry no baseline-refresh reminder.
	if md := MarkdownSummary(base, base, 20); strings.Contains(md, "Refresh") {
		t.Errorf("no-change summary still asks for a baseline refresh:\n%s", md)
	}
	// No baseline: rows render with dashes, nothing is flagged.
	md = MarkdownSummary(nil, cur, 20)
	if !strings.Contains(md, "—") || strings.Contains(md, "Refresh") {
		t.Errorf("baseline-less summary malformed:\n%s", md)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	res := tinyRun(t)
	path := filepath.Join(t.TempDir(), FileName(res.Revision))
	if err := WriteFile(path, res); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Revision != res.Revision || len(got.Entries) != len(res.Entries) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, res)
	}
}

func TestReadFileRejectsUnknownSchema(t *testing.T) {
	res := tinyRun(t)
	res.Schema = Schema + 1
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := WriteFile(path, res); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Fatal("expected schema mismatch error")
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	base := &Result{
		Schema:             Schema,
		Configs:            []ConfigSummary{{Config: "a", InstsPerSec: 1000}, {Config: "b", InstsPerSec: 1000}},
		OverallInstsPerSec: 1000,
	}
	cur := &Result{
		Schema:             Schema,
		Configs:            []ConfigSummary{{Config: "a", InstsPerSec: 700}, {Config: "b", InstsPerSec: 950}},
		OverallInstsPerSec: 815,
	}
	regs := Compare(base, cur, 20)
	if len(regs) != 1 {
		t.Fatalf("regressions = %v, want exactly the 30%% drop on config a", regs)
	}
	if regs[0].Config != "a" || regs[0].Metric != "insts/sec" {
		t.Fatalf("regression = %+v, want insts/sec on config a", regs[0])
	}

	// A faster current result never regresses.
	if regs := Compare(cur, base, 20); len(regs) != 0 {
		t.Fatalf("speed-up flagged as regression: %v", regs)
	}
}

func TestCompareFlagsAllocationGrowth(t *testing.T) {
	base := &Result{
		Schema:             Schema,
		Configs:            []ConfigSummary{{Config: "a", InstsPerSec: 1000, AllocsPerKInst: 50}},
		OverallInstsPerSec: 1000,
	}
	cur := &Result{
		Schema:             Schema,
		Configs:            []ConfigSummary{{Config: "a", InstsPerSec: 1000, AllocsPerKInst: 200}},
		OverallInstsPerSec: 1000,
	}
	regs := Compare(base, cur, 20)
	if len(regs) != 1 || regs[0].Metric != "allocs/kinst" {
		t.Fatalf("regressions = %v, want the 4x allocs/kinst growth", regs)
	}
	// Small absolute growth on near-zero counts is within the slack.
	cur.Configs[0].AllocsPerKInst = base.Configs[0].AllocsPerKInst*1.5 + 0.5
	if regs := Compare(base, cur, 20); len(regs) != 0 {
		t.Fatalf("alloc growth within slack flagged: %v", regs)
	}
}

func TestCompareSkipsMissingConfigs(t *testing.T) {
	base := &Result{Schema: Schema, Configs: []ConfigSummary{{Config: "gone", InstsPerSec: 1000}}}
	cur := &Result{Schema: Schema, Configs: []ConfigSummary{{Config: "new", InstsPerSec: 10}}}
	if regs := Compare(base, cur, 20); len(regs) != 0 {
		t.Fatalf("mismatched config sets should not regress: %v", regs)
	}
}

func TestComparableRejectsMismatchedSettings(t *testing.T) {
	a := &Result{Schema: Schema, Iterations: 120, Window: 128, Benchmarks: []string{"gzip", "applu"}}
	if err := Comparable(a, a); err != nil {
		t.Fatalf("identical settings rejected: %v", err)
	}
	b := *a
	b.Iterations = 40
	if err := Comparable(a, &b); err == nil {
		t.Error("differing iterations accepted")
	}
	b = *a
	b.Window = 256
	if err := Comparable(a, &b); err == nil {
		t.Error("differing window accepted")
	}
	b = *a
	b.Benchmarks = []string{"gzip"}
	if err := Comparable(a, &b); err == nil {
		t.Error("differing benchmark sets accepted")
	}
	b = *a
	b.Configs = []ConfigSummary{{Config: "nosq-delay"}}
	if err := Comparable(a, &b); err == nil {
		t.Error("differing configuration sets accepted")
	}
}
