package obs

import "time"

// SpanRecord is one completed span of a job's lifecycle: a named phase, when
// it started, and how long it lasted. Spans are embedded into the job event
// log (simapi.EventSpan events) rather than shipped to an external tracer —
// the event log is already durable, streamable, and per-job, which is
// exactly the scope a simulation job's trace needs.
type SpanRecord struct {
	// Name identifies the phase: "queued", "run", "shard[3]", "merged",
	// "done".
	Name string `json:"name"`
	// Start is the wall-clock start of the phase.
	Start time.Time `json:"start"`
	// Duration is how long the phase lasted.
	Duration time.Duration `json:"duration"`
}

// Span is an in-flight phase; End closes it into a SpanRecord. The handed-out
// duration uses the monotonic clock carried by start.
type Span struct {
	name  string
	start time.Time
}

// StartSpan begins a phase now.
func StartSpan(name string) Span { return Span{name: name, start: time.Now()} }

// SpanAt begins a phase at an explicit start time — for phases whose
// beginning was recorded before the span API got involved (a job's submit
// time, a shard's first lease).
func SpanAt(name string, start time.Time) Span { return Span{name: name, start: start} }

// End closes the span.
func (s Span) End() SpanRecord {
	return SpanRecord{Name: s.name, Start: s.start, Duration: time.Since(s.start)}
}

// EndAt closes the span at an explicit end time.
func (s Span) EndAt(end time.Time) SpanRecord {
	return SpanRecord{Name: s.name, Start: s.start, Duration: end.Sub(s.start)}
}
