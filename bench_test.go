package repro

// The repository-level benchmark harness: one benchmark per table and figure
// of the paper's evaluation, plus ablation benchmarks for the design choices
// called out in DESIGN.md and micro-benchmarks of the core structures.
//
// The per-figure benchmarks run a scaled-down version of each experiment
// (selected benchmarks, shorter workloads) so that `go test -bench=.`
// completes in minutes; the full-size experiments are run with
// `go run ./cmd/nosq-experiments`. Key results are reported as custom
// benchmark metrics (relative execution times, misprediction rates) so the
// paper's headline numbers are visible directly in the benchmark output.

import (
	"testing"

	"repro/internal/bypass"
	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/experiments"
	"repro/internal/pipeline"
	"repro/internal/stats"
	"repro/internal/svw"
	"repro/internal/workload"
)

// benchSubset is the benchmark set used by the scaled-down per-figure
// benchmarks: the paper's own "selected benchmarks" (Figures 3-5).
var benchSubset = core.SelectedBenchmarks()

// benchOpts returns experiment options sized for the benchmark harness.
func benchOpts(benchmarks []string) experiments.Options {
	return experiments.Options{Iterations: 120, Benchmarks: benchmarks}
}

// BenchmarkTable5 regenerates Table 5 (communication behaviour and bypassing
// predictor accuracy) on the selected benchmark subset and reports the
// average misprediction rates with and without delay.
func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, rows, err := experiments.Table5(benchOpts(benchSubset))
		if err != nil {
			b.Fatal(err)
		}
		var noDelay, withDelay, comm []float64
		for _, r := range rows {
			if r.IsMean {
				continue
			}
			noDelay = append(noDelay, r.MisPer10kNoDelay)
			withDelay = append(withDelay, r.MisPer10kDelay)
			comm = append(comm, r.CommPct)
		}
		b.ReportMetric(stats.Mean(comm), "comm_%loads")
		b.ReportMetric(stats.Mean(noDelay), "mispred/10k_nodelay")
		b.ReportMetric(stats.Mean(withDelay), "mispred/10k_delay")
	}
}

// BenchmarkFigure2 regenerates Figure 2 (relative execution time, 128-entry
// window) and reports the all-benchmark geometric means for each
// configuration relative to the ideal baseline.
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, rows, err := experiments.Figure2(benchOpts(benchSubset))
		if err != nil {
			b.Fatal(err)
		}
		reportRelativeMeans(b, rows)
	}
}

// BenchmarkFigure3 regenerates Figure 3 (relative execution time, 256-entry
// window) on the paper's selected benchmarks.
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, rows, err := experiments.Figure3(benchOpts(nil))
		if err != nil {
			b.Fatal(err)
		}
		reportRelativeMeans(b, rows)
	}
}

func reportRelativeMeans(b *testing.B, rows []experiments.RelTimeRow) {
	b.Helper()
	agg := map[string][]float64{}
	for _, r := range rows {
		if r.IsMean {
			continue
		}
		for k, v := range r.Relative {
			agg[k] = append(agg[k], v)
		}
	}
	for k, vals := range agg {
		b.ReportMetric(stats.GeoMean(vals), "rel_time_"+k)
	}
}

// BenchmarkFigure4 regenerates Figure 4 (data-cache reads of NoSQ relative to
// the baseline) and reports the mean relative read count.
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, rows, err := experiments.Figure4(benchOpts(nil))
		if err != nil {
			b.Fatal(err)
		}
		var totals, backend []float64
		for _, r := range rows {
			if r.IsMean {
				continue
			}
			totals = append(totals, r.Total())
			backend = append(backend, r.BackendReads)
		}
		b.ReportMetric(stats.Mean(totals), "rel_dcache_reads")
		b.ReportMetric(stats.Mean(backend), "rel_backend_reads")
	}
}

// BenchmarkFigure5Capacity regenerates the top half of Figure 5 (predictor
// capacity sensitivity) and reports the geometric-mean relative time per
// capacity.
func BenchmarkFigure5Capacity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, rows, err := experiments.Figure5Capacity(benchOpts(nil))
		if err != nil {
			b.Fatal(err)
		}
		reportSensitivity(b, rows, []string{"cap-512", "cap-1k", "cap-2k", "cap-4k", "cap-inf"})
	}
}

// BenchmarkFigure5History regenerates the bottom half of Figure 5 (path
// history length sensitivity).
func BenchmarkFigure5History(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, rows, err := experiments.Figure5History(benchOpts(nil))
		if err != nil {
			b.Fatal(err)
		}
		reportSensitivity(b, rows, []string{"hist-4", "hist-6", "hist-8", "hist-10", "hist-12"})
	}
}

func reportSensitivity(b *testing.B, rows []experiments.SensitivityRow, labels []string) {
	b.Helper()
	for _, label := range labels {
		var vals []float64
		for _, r := range rows {
			if r.IsMean {
				continue
			}
			if v, ok := r.Relative[label]; ok {
				vals = append(vals, v)
			}
		}
		b.ReportMetric(stats.GeoMean(vals), "rel_time_"+label)
	}
}

// --- Ablation benchmarks (design choices called out in DESIGN.md) ---------

// runAblation runs one benchmark under two configurations and reports the
// cycle ratio (variant / reference).
func runAblation(b *testing.B, benchmark string, reference, variant pipeline.Config) {
	b.Helper()
	prog := workload.MustGenerate(benchmark, workload.Options{Iterations: 150})
	for i := 0; i < b.N; i++ {
		refRun, err := pipeline.MustNew(prog, reference).Run()
		if err != nil {
			b.Fatal(err)
		}
		varRun, err := pipeline.MustNew(prog, variant).Run()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(stats.RelativeExecutionTime(varRun, refRun), "rel_time_variant")
		b.ReportMetric(varRun.MispredictsPer10kLoads(), "mispred/10k_variant")
		b.ReportMetric(refRun.MispredictsPer10kLoads(), "mispred/10k_reference")
	}
}

// BenchmarkAblationDelay compares NoSQ with and without the confidence-driven
// delay mechanism on the partial-store-heavy benchmark the paper calls out
// (g721.e).
func BenchmarkAblationDelay(b *testing.B) {
	runAblation(b, "g721.e", pipeline.NoSQConfig(true), pipeline.NoSQConfig(false))
}

// BenchmarkAblationHybridPredictor compares the hybrid (path-sensitive +
// path-insensitive) bypassing predictor against a path-insensitive-only
// predictor on a path-dependent benchmark.
func BenchmarkAblationHybridPredictor(b *testing.B) {
	ref := pipeline.NoSQConfig(true)
	variant := pipeline.NoSQConfig(true)
	variant.BypassPred.Hybrid = false
	variant.Name = "nosq-no-path-table"
	runAblation(b, "eon.k", ref, variant)
}

// BenchmarkAblationPredictorCapacity compares the default 2K-entry predictor
// against a quarter-size 512-entry predictor on a SPECint benchmark (the
// suite the paper reports as most capacity-sensitive).
func BenchmarkAblationPredictorCapacity(b *testing.B) {
	ref := pipeline.NoSQConfig(true)
	variant := pipeline.NoSQConfig(true)
	variant.BypassPred.Entries = 512
	variant.Name = "nosq-512"
	runAblation(b, "vortex", ref, variant)
}

// BenchmarkAblationStoreSets compares the realistic baseline's StoreSets load
// scheduling against naive scheduling (no memory dependence prediction).
func BenchmarkAblationStoreSets(b *testing.B) {
	ref := pipeline.BaselineConfig()
	variant := pipeline.BaselineConfig()
	variant.Sched = pipeline.SchedNaive
	variant.Name = "assoc-sq-naive"
	runAblation(b, "mesa.o", ref, variant)
}

// BenchmarkAblationTaggedSSBF compares the tagged, set-associative T-SSBF's
// filtering against an untagged direct-mapped SSBF of the same total size on
// a committed-store/load trace (the structure-level ablation of Section 3.4:
// equality tests require tags; untagged filters also re-execute more).
func BenchmarkAblationTaggedSSBF(b *testing.B) {
	prog := workload.MustGenerate("gzip", workload.Options{Iterations: 150})
	for i := 0; i < b.N; i++ {
		machine := emu.New(prog)
		machine.MaxInsts = 2_000_000
		tagged := svw.NewTSSBF(128, 4)
		untagged := svw.NewSSBF(128)
		for {
			d, err := machine.Step()
			if err != nil {
				break
			}
			switch {
			case d.IsStore():
				tagged.StoreCommit(d.EffAddr, d.StoreSSN, d.MemSize)
				untagged.StoreCommit(d.EffAddr, d.StoreSSN)
			case d.IsLoad():
				// Equivalent inequality tests against both organisations.
				tagged.TestNonBypassed(d.EffAddr, d.Dep.SSN)
				untagged.TestLoad(d.EffAddr, d.Dep.SSN)
			}
			if machine.Halted() {
				break
			}
		}
		b.ReportMetric(100*tagged.Counters().ReexecRate(), "tagged_reexec_%")
		b.ReportMetric(100*untagged.Counters().ReexecRate(), "untagged_reexec_%")
	}
}

// --- Micro-benchmarks of the core structures ------------------------------

// BenchmarkPipelineThroughput measures raw simulation speed (simulated
// instructions per second) of the NoSQ configuration.
func BenchmarkPipelineThroughput(b *testing.B) {
	prog := workload.MustGenerate("gzip", workload.Options{Iterations: 100})
	b.ResetTimer()
	var committed uint64
	for i := 0; i < b.N; i++ {
		run, err := pipeline.MustNew(prog, pipeline.NoSQConfig(true)).Run()
		if err != nil {
			b.Fatal(err)
		}
		committed += run.Committed
	}
	b.ReportMetric(float64(committed)/float64(b.N), "insts/op")
}

// BenchmarkEmulator measures functional emulation speed.
func BenchmarkEmulator(b *testing.B) {
	prog := workload.MustGenerate("gzip", workload.Options{Iterations: 100})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		machine := emu.New(prog)
		if _, err := machine.Run(10_000_000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBypassPredictor measures predict+train throughput of the
// bypassing predictor.
func BenchmarkBypassPredictor(b *testing.B) {
	p := bypass.New(bypass.DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pc := 0x400000 + uint64(i%512)*4
		hist := uint64(i) * 2654435761
		pred := p.Predict(pc, hist)
		if i%7 == 0 {
			p.Train(pc, hist, bypass.Outcome{Bypassable: true, Distance: uint64(i % 60), StoreSize: 8}, pred.FromPathTable)
		} else {
			p.Reward(pc, hist)
		}
	}
}

// BenchmarkTSSBF measures the tagged SSBF's store-update plus load-test
// throughput.
func BenchmarkTSSBF(b *testing.B) {
	f := svw.NewTSSBF(128, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := uint64(i%4096) * 8
		f.StoreCommit(addr, uint64(i+1), 8)
		f.TestNonBypassed(addr, uint64(i))
	}
}
