package tuner

import (
	"context"
	"math"
	"path/filepath"
	"testing"

	"repro/internal/corpus"
	"repro/internal/workload"
)

// committedCorpusDir is the repository's committed corpus, relative to this
// package directory.
const committedCorpusDir = "../../bench/corpus"

// TestCommittedCorpusReplaysRecordedScores is the corpus's regression
// contract: every committed entry, re-evaluated in its recorded evaluation
// cell, must reproduce its recorded objective score. The simulator is
// bit-deterministic, so the tolerance only absorbs float formatting — a
// drifting score means the simulator's behaviour changed and the entry's
// provenance (and likely the paper-reproduction metrics) no longer hold.
func TestCommittedCorpusReplaysRecordedScores(t *testing.T) {
	entries, err := corpus.LoadDir(committedCorpusDir)
	if err != nil {
		t.Fatalf("committed corpus unreadable (run nosq-tune to regenerate): %v", err)
	}
	eval := LocalEvaluator{Parallelism: 2}
	for _, e := range entries {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			t.Parallel()
			if got := filepath.Base(e.Filename()); got != e.Filename() || got == "" {
				t.Fatalf("bad canonical filename %q", e.Filename())
			}
			obj, err := ObjectiveByName(e.Provenance.Objective)
			if err != nil {
				t.Fatal(err)
			}
			m, err := eval.Evaluate(context.Background(), e.Scenario, EvalSettings{
				Config:         e.Provenance.Config,
				BaselineConfig: e.Provenance.BaselineConfig,
				Window:         e.Provenance.Window,
			})
			if err != nil {
				t.Fatal(err)
			}
			got := obj.Score(m)
			if !closeEnough(got, e.Provenance.Score) {
				t.Errorf("replayed %s score %v, recorded %v", obj.Name, got, e.Provenance.Score)
			}
			if got <= e.Provenance.StressBest {
				t.Errorf("entry no longer beats its recorded stress best: %v <= %v", got, e.Provenance.StressBest)
			}
		})
	}
}

// TestCommittedCorpusBeatsStressSuite recomputes the stress-suite best from
// scratch for each objective present in the corpus — the acceptance property
// that discovered entries exceed every *current* built-in stress scenario,
// not just the snapshot recorded at discovery time.
func TestCommittedCorpusBeatsStressSuite(t *testing.T) {
	entries, err := corpus.LoadDir(committedCorpusDir)
	if err != nil {
		t.Fatal(err)
	}
	eval := LocalEvaluator{Parallelism: 2}

	// One stress-suite evaluation per distinct (objective, cell), shared by
	// that objective's entries.
	type cell struct {
		objective string
		window    int
		iters     int
	}
	best := map[cell]float64{}
	for _, e := range entries {
		p := e.Provenance
		if p.SearchIterations == 0 {
			t.Fatalf("%s: provenance lacks search_iterations; cannot recompute the stress best", e.Name)
		}
		c := cell{p.Objective, p.Window, p.SearchIterations}
		if _, done := best[c]; done {
			continue
		}
		obj, err := ObjectiveByName(p.Objective)
		if err != nil {
			t.Fatal(err)
		}
		top := -1.0
		for _, s := range workload.StressScenarios() {
			s.Iterations = p.SearchIterations
			m, err := eval.Evaluate(context.Background(), s, EvalSettings{
				Config:         p.Config,
				BaselineConfig: p.BaselineConfig,
				Window:         p.Window,
			})
			if err != nil {
				t.Fatal(err)
			}
			if score := obj.Score(m); score > top {
				top = score
			}
		}
		best[c] = top
	}
	for _, e := range entries {
		p := e.Provenance
		c := cell{p.Objective, p.Window, p.SearchIterations}
		if !closeEnough(best[c], p.StressBest) {
			t.Errorf("%s: recomputed stress best %v, recorded %v", e.Name, best[c], p.StressBest)
		}
		if p.Score <= best[c] {
			t.Errorf("%s: recorded score %v does not beat the recomputed stress best %v", e.Name, p.Score, best[c])
		}
	}
}

// closeEnough compares scores with a relative tolerance absorbing only float
// round-trips, never behavioural drift.
func closeEnough(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}
