package simserver

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/simapi"
	"repro/internal/simclient"
)

// benchSpec returns distinct small specs so quota tests never trip dedup by
// accident.
func benchSpec(bench string) simapi.JobSpec {
	return simapi.JobSpec{Experiment: "fig2", Benchmarks: []string{bench}, Iterations: 10}
}

// TestServerQuotaBackpressure: one client saturating its active-job cap gets
// 429 with a Retry-After hint while a second client still schedules; once the
// global queue bound fills, everyone gets 429; /metricsz exposes the
// per-client gauges behind all of it. Workers are deliberately not started —
// every job stays queued.
func TestServerQuotaBackpressure(t *testing.T) {
	srv, c := newTestServer(t, Config{
		Workers:        1,
		MaxQueuedJobs:  4,
		QuotaMaxActive: 2,
	})
	ctx := context.Background()
	alice := *c
	alice.WithClientID("alice")
	bob := *c
	bob.WithClientID("bob")
	carol := *c
	carol.WithClientID("carol")

	// Alice fills her cap...
	for i, bench := range []string{"gzip", "applu"} {
		if _, err := alice.Submit(ctx, benchSpec(bench)); err != nil {
			t.Fatalf("alice submit %d: %v", i, err)
		}
	}
	// ...and her third submission bounces with a retry hint.
	_, err := alice.Submit(ctx, benchSpec("mgrid"))
	var apiErr *simclient.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusTooManyRequests {
		t.Fatalf("alice over cap: error = %v, want 429 APIError", err)
	}
	if apiErr.RetryAfter <= 0 {
		t.Errorf("429 carried no Retry-After hint: %+v", apiErr)
	}

	// Bob is unaffected by alice's cap.
	for i, bench := range []string{"mgrid", "twolf"} {
		if _, err := bob.Submit(ctx, benchSpec(bench)); err != nil {
			t.Fatalf("bob submit %d (alice saturated, bob must still schedule): %v", i, err)
		}
	}

	// The queue now holds MaxQueuedJobs; even a fresh client bounces.
	_, err = carol.Submit(ctx, benchSpec("parser"))
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusTooManyRequests {
		t.Fatalf("carol with full queue: error = %v, want 429 APIError", err)
	}

	m := srv.Metrics()
	if g := m.Clients["alice"]; g.Queued != 2 || g.Submitted != 2 || g.Rejected != 1 {
		t.Errorf("alice gauges = %+v, want queued 2 submitted 2 rejected 1", g)
	}
	if g := m.Clients["bob"]; g.Queued != 2 || g.Rejected != 0 {
		t.Errorf("bob gauges = %+v, want queued 2 rejected 0", g)
	}
	if g := m.Clients["carol"]; g.Submitted != 0 || g.Rejected != 1 {
		t.Errorf("carol gauges = %+v, want submitted 0 rejected 1", g)
	}

	// Dedup consumes no quota: an identical spec collapses onto the queued
	// job even for a client at its cap.
	dup, err := alice.Submit(ctx, benchSpec("gzip"))
	if err != nil || !dup.Deduped {
		t.Fatalf("dedup at cap = %+v, %v; dedup must not be charged against the quota", dup, err)
	}
}

// TestServerQuota429Wire pins the HTTP shape of a quota refusal: status 429,
// a Retry-After header in whole seconds, and a JSON body whose
// retry_after_ms carries the precise hint — plus the 400 on a malformed
// client identity header.
func TestServerQuota429Wire(t *testing.T) {
	srv, _ := newTestServer(t, Config{Workers: 1, QuotaMaxActive: 1})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	submit := func(clientID, bench string) *http.Response {
		t.Helper()
		body, _ := json.Marshal(benchSpec(bench))
		req, err := http.NewRequest(http.MethodPost, hs.URL+"/api/v1/jobs", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if clientID != "" {
			req.Header.Set("X-Client-ID", clientID)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	resp := submit("alice", "gzip")
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("first submission = %d, want 201", resp.StatusCode)
	}
	resp = submit("alice", "applu")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-cap submission = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Errorf("Retry-After header = %q, want a positive whole-second value", ra)
	}
	var eb simapi.ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatalf("429 body not JSON: %v", err)
	}
	if eb.Error == "" || eb.RetryAfterMillis <= 0 {
		t.Errorf("429 body = %+v, want an error message and retry_after_ms", eb)
	}

	bad := submit("no spaces allowed", "gzip")
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed X-Client-ID = %d, want 400", bad.StatusCode)
	}
}

// TestTenantRateLimit drives the token bucket with an injected clock: the
// burst spends down, refusals name the precise wait for the next token, and
// the bucket refills with time — per client, without touching a neighbor.
func TestTenantRateLimit(t *testing.T) {
	reg := newTenantRegistry(0, 1.0, 2) // 1 token/s, burst of 2
	now := time.Unix(1_700_000_000, 0)
	reg.now = func() time.Time { return now }

	for i := 0; i < 2; i++ {
		if err := reg.admit("alice"); err != nil {
			t.Fatalf("burst submission %d: %v", i, err)
		}
	}
	err := reg.admit("alice")
	var qe *QuotaError
	if !errors.As(err, &qe) {
		t.Fatalf("over-rate submission error = %v, want QuotaError", err)
	}
	if qe.RetryAfter <= 0 || qe.RetryAfter > time.Second {
		t.Errorf("RetryAfter = %v, want (0, 1s] (one token at 1/s)", qe.RetryAfter)
	}
	// Bob has his own bucket.
	if err := reg.admit("bob"); err != nil {
		t.Fatalf("bob blocked by alice's bucket: %v", err)
	}
	// Half a second refills half a token — still short.
	now = now.Add(500 * time.Millisecond)
	if err := reg.admit("alice"); !errors.As(err, &qe) {
		t.Fatalf("after 0.5s: error = %v, want still rate-limited", err)
	}
	// A full second's refill admits again.
	now = now.Add(600 * time.Millisecond)
	if err := reg.admit("alice"); err != nil {
		t.Fatalf("after refill: %v", err)
	}
	if g := reg.snapshot()["alice"]; g.Submitted != 3 || g.Rejected != 2 {
		t.Errorf("alice gauges = %+v, want submitted 3 rejected 2", g)
	}
}

// TestClientSubmitWaitHonorsRetryAfter: SubmitWait sleeps out the server's
// 429 hint and lands the submission once the quota frees up.
func TestClientSubmitWaitHonorsRetryAfter(t *testing.T) {
	srv, c := newTestServer(t, Config{Workers: 1, QuotaMaxActive: 1})
	c.WithClientID("alice")
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	first, err := c.Submit(ctx, benchSpec("gzip"))
	if err != nil {
		t.Fatal(err)
	}
	// Plain Submit refuses while the first job occupies the cap...
	if _, err := c.Submit(ctx, benchSpec("applu")); err == nil {
		t.Fatal("second submission under a cap of 1 should 429")
	}
	// ...but SubmitWait retries through it once workers drain the queue.
	srv.Start()
	info, err := c.SubmitWait(ctx, benchSpec("applu"))
	if err != nil {
		t.Fatalf("SubmitWait: %v", err)
	}
	if info.Deduped || info.ID == first.ID {
		t.Fatalf("SubmitWait info = %+v, want a fresh job", info)
	}
	if final, err := c.Wait(ctx, info.ID); err != nil || final.State != simapi.StateDone {
		t.Fatalf("retried job finished %+v, %v", final, err)
	}
}

// TestValidClientID pins the accepted identity charset.
func TestValidClientID(t *testing.T) {
	for _, id := range []string{"alice", "team/ci-7", "a.b_c-d", "A0"} {
		if !validClientID(id) {
			t.Errorf("validClientID(%q) = false, want true", id)
		}
	}
	for _, id := range []string{"", "has space", "héllo", "semi;colon", strings.Repeat("x", 65)} {
		if validClientID(id) {
			t.Errorf("validClientID(%q) = true, want false", id)
		}
	}
}
