package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/stats"
)

// Experiment is one named, registered experiment: a reproduction of a table
// or figure of the paper, or a free-form sweep. Implementations must be safe
// for concurrent Run calls.
type Experiment interface {
	// Name is the registry key (e.g. "table5", "fig2", "sweep").
	Name() string
	// Description is a one-line summary shown by --list.
	Description() string
	// Run executes the experiment. The context cancels in-flight simulations;
	// a cancelled run returns ctx.Err() (work finished before cancellation is
	// still recorded in the checkpoint file, if one is configured).
	Run(ctx context.Context, opts Options) (*Report, error)
}

// Report is the structured result of an experiment run: one table of typed
// rows (rendered as text, Markdown, JSON, or CSV via Render), the
// experiment-specific row structs for programmatic use, and run metadata.
type Report struct {
	// Experiment is the registry name of the experiment that produced this.
	Experiment string
	// Table holds the structured rows all renderings derive from.
	Table *stats.Table
	// Rows holds the typed row slice ([]Table5Row, []RelTimeRow, ...).
	Rows interface{}
	// Meta records run metadata (job counts, shard selection, resume counts)
	// as ordered key=value pairs.
	Meta []MetaEntry
	// Summary is the typed job accounting behind the Meta entries; the
	// simulation server reads it to attribute result-cache hits and misses.
	Summary Summary
}

// MetaEntry is one ordered key=value pair of report metadata.
type MetaEntry struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// AddMeta appends a metadata entry.
func (r *Report) AddMeta(key string, value interface{}) {
	r.Meta = append(r.Meta, MetaEntry{Key: key, Value: fmt.Sprintf("%v", value)})
}

// Render renders the report in the named format: "text", "markdown", "json",
// or "csv" (see stats.Formats). Metadata is appended as comment-style lines
// to the text and Markdown renderings and embedded in the JSON document; the
// CSV rendering is rows only.
func (r *Report) Render(format string) (string, error) {
	switch format {
	case stats.FormatText, stats.FormatMarkdown:
		out, err := r.Table.Render(format)
		if err != nil {
			return "", err
		}
		if len(r.Meta) > 0 {
			var b strings.Builder
			b.WriteString(out)
			b.WriteString("\n")
			for _, m := range r.Meta {
				fmt.Fprintf(&b, "> %s: %s\n", m.Key, m.Value)
			}
			return b.String(), nil
		}
		return out, nil
	case stats.FormatJSON:
		return r.renderJSON()
	default:
		return r.Table.Render(format)
	}
}

// metaObject marshals ordered meta entries as a JSON object, preserving
// entry order (encoding/json would sort a map's keys).
type metaObject []MetaEntry

func (m metaObject) MarshalJSON() ([]byte, error) {
	var b strings.Builder
	b.WriteByte('{')
	for i, e := range m {
		if i > 0 {
			b.WriteByte(',')
		}
		k, err := json.Marshal(e.Key)
		if err != nil {
			return nil, err
		}
		v, err := json.Marshal(e.Value)
		if err != nil {
			return nil, err
		}
		b.Write(k)
		b.WriteByte(':')
		b.Write(v)
	}
	b.WriteByte('}')
	return []byte(b.String()), nil
}

func (r *Report) renderJSON() (string, error) {
	tbl, err := r.Table.JSON()
	if err != nil {
		return "", err
	}
	doc := struct {
		Experiment string          `json:"experiment"`
		Meta       metaObject      `json:"meta"`
		Report     json.RawMessage `json:"report"`
	}{Experiment: r.Experiment, Meta: metaObject(r.Meta), Report: tbl}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return "", err
	}
	return string(b) + "\n", nil
}

// registry is the global experiment registry. Built-in experiments register
// in init; additional experiments may register at program start-up.
var registry = struct {
	sync.RWMutex
	byName map[string]Experiment
	order  []string
}{byName: make(map[string]Experiment)}

// Register adds an experiment to the registry. It panics on a duplicate or
// empty name — registration is a program start-up activity and a collision
// is a programming error.
func Register(e Experiment) {
	name := e.Name()
	if name == "" {
		panic("experiments: Register with empty name")
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.byName[name]; dup {
		panic(fmt.Sprintf("experiments: duplicate registration of %q", name))
	}
	registry.byName[name] = e
	registry.order = append(registry.order, name)
}

// Lookup returns the named experiment, or an error naming the known
// experiments.
func Lookup(name string) (Experiment, error) {
	registry.RLock()
	defer registry.RUnlock()
	if e, ok := registry.byName[name]; ok {
		return e, nil
	}
	known := append([]string(nil), registry.order...)
	sort.Strings(known)
	return nil, fmt.Errorf("experiments: unknown experiment %q (known: %s)",
		name, strings.Join(known, ", "))
}

// Names returns the registered experiment names in registration order (the
// paper's presentation order for the built-ins).
func Names() []string {
	registry.RLock()
	defer registry.RUnlock()
	return append([]string(nil), registry.order...)
}

// All returns the registered experiments in registration order.
func All() []Experiment {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]Experiment, 0, len(registry.order))
	for _, name := range registry.order {
		out = append(out, registry.byName[name])
	}
	return out
}

// funcExperiment adapts a function to the Experiment interface; the built-in
// experiments are all registered through it.
type funcExperiment struct {
	name string
	desc string
	run  func(context.Context, Options) (*Report, error)
}

func (f funcExperiment) Name() string        { return f.name }
func (f funcExperiment) Description() string { return f.desc }
func (f funcExperiment) Run(ctx context.Context, opts Options) (*Report, error) {
	return f.run(ctx, opts)
}

// report wraps a table + typed rows + sweep summary into a Report.
func report(name string, tbl *stats.Table, rows interface{}, sum Summary) *Report {
	r := &Report{Experiment: name, Table: tbl, Rows: rows, Summary: sum}
	r.AddMeta("jobs", sum.Total)
	r.AddMeta("executed", sum.Executed)
	if sum.Resumed > 0 {
		r.AddMeta("resumed", sum.Resumed)
	}
	if sum.SkippedShard > 0 {
		r.AddMeta("skipped-other-shards", sum.SkippedShard)
	}
	if sum.Incomplete > 0 {
		r.AddMeta("benchmarks-dropped-incomplete", sum.Incomplete)
	}
	if sum.CorruptCheckpoint > 0 {
		r.AddMeta("checkpoint-corrupt-lines", sum.CorruptCheckpoint)
	}
	return r
}

// registerRows registers an experiment implemented as a (table, typed rows,
// summary) function, wrapping its result into a Report.
func registerRows[R any](name, desc string, run func(context.Context, Options) (*stats.Table, []R, Summary, error)) {
	Register(funcExperiment{
		name: name,
		desc: desc,
		run: func(ctx context.Context, opts Options) (*Report, error) {
			tbl, rows, sum, err := run(ctx, opts)
			if err != nil {
				return nil, err
			}
			return report(name, tbl, rows, sum), nil
		},
	})
}

func init() {
	registerRows("table5",
		"Table 5: store-load communication behaviour and bypassing-predictor accuracy", table5)
	registerRows("fig2",
		"Figure 2: relative execution time, 128-entry window, all benchmarks", figure2)
	registerRows("fig3",
		"Figure 3: relative execution time, 256-entry window, selected benchmarks", figure3)
	registerRows("fig4",
		"Figure 4: data-cache read bandwidth of NoSQ relative to the baseline", figure4)
	registerRows("fig5cap",
		"Figure 5 (top): bypassing-predictor capacity sensitivity", figure5Capacity)
	registerRows("fig5hist",
		"Figure 5 (bottom): bypassing-predictor path-history-length sensitivity", figure5History)
	Register(funcExperiment{
		name: "sweep",
		desc: "free-form sweep over a configuration × window × benchmark grid",
		run:  Sweep,
	})
}
