package simapi

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/workload"
)

// normalize is a test helper: Normalize a copy, failing the test on error.
func normalize(t *testing.T, s JobSpec) JobSpec {
	t.Helper()
	if err := s.Normalize(); err != nil {
		t.Fatalf("Normalize(%+v): %v", s, err)
	}
	return s
}

// TestNormalizeEquivalence is the compatibility contract of the source
// union: a legacy flat spec and its union equivalent normalize to the same
// canonical value — byte-identical JSON, therefore identical dedup and
// cache hashes everywhere a spec is hashed after normalization.
func TestNormalizeEquivalence(t *testing.T) {
	scn := &workload.Scenario{Name: "s", Pattern: workload.PatternAliasStorm, Iterations: 10}
	cases := []struct {
		name          string
		legacy, union JobSpec
	}{
		{
			"benchmark names",
			JobSpec{Experiment: "sweep", Benchmarks: []string{"gzip", "applu"}, Iterations: 50},
			JobSpec{Experiment: "sweep", Iterations: 50,
				Source: &Source{Kind: SourceBenchmark, Benchmarks: []string{"gzip", "applu"}}},
		},
		{
			"default benchmarks",
			JobSpec{Experiment: "fig2"},
			JobSpec{Experiment: "fig2", Source: &Source{Kind: SourceBenchmark}},
		},
		{
			"inline scenario",
			JobSpec{Experiment: "scenario", Scenario: scn},
			JobSpec{Experiment: "scenario", Source: &Source{Kind: SourceScenario, Scenario: scn}},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			l, u := normalize(t, c.legacy), normalize(t, c.union)
			lb, _ := json.Marshal(l)
			ub, _ := json.Marshal(u)
			if string(lb) != string(ub) {
				t.Errorf("canonical encodings differ:\nlegacy %s\nunion  %s", lb, ub)
			}
			if l.Benchmarks != nil || l.Scenario != nil {
				t.Errorf("normalized spec still carries legacy fields: %+v", l)
			}
			// Options must be independent of the submitted encoding too.
			if !reflect.DeepEqual(c.legacy.Options(), c.union.Options()) {
				t.Errorf("Options differ: %+v vs %+v", c.legacy.Options(), c.union.Options())
			}
		})
	}
}

// TestNormalizeBareSpecKeepsLegacyBytes pins that a spec with no source at
// all round-trips to the exact bytes it always encoded to, so pre-union
// hashes of default-source specs stay valid across the upgrade.
func TestNormalizeBareSpecKeepsLegacyBytes(t *testing.T) {
	before, _ := json.Marshal(JobSpec{Experiment: "fig2", Iterations: 25})
	after, _ := json.Marshal(normalize(t, JobSpec{Experiment: "fig2", Iterations: 25}))
	if string(before) != string(after) {
		t.Errorf("bare spec encoding changed: %s -> %s", before, after)
	}
}

func TestNormalizeRejects(t *testing.T) {
	scn := &workload.Scenario{Name: "s", Iterations: 10}
	cases := []struct {
		name string
		spec JobSpec
		want string
	}{
		{"unknown kind", JobSpec{Experiment: "sweep", Source: &Source{Kind: "binary"}}, "unknown source kind"},
		{"union plus legacy benchmarks",
			JobSpec{Experiment: "sweep", Benchmarks: []string{"gzip"},
				Source: &Source{Kind: SourceBenchmark, Benchmarks: []string{"gzip"}}},
			"both source and legacy"},
		{"union plus legacy scenario",
			JobSpec{Experiment: "scenario", Scenario: scn,
				Source: &Source{Kind: SourceScenario, Scenario: scn}},
			"both source and legacy"},
		{"scenario kind without spec",
			JobSpec{Experiment: "scenario", Source: &Source{Kind: SourceScenario}},
			"without a scenario spec"},
		{"scenario kind with traces",
			JobSpec{Experiment: "scenario", Source: &Source{Kind: SourceScenario, Scenario: scn, Traces: []string{"x"}}},
			"must not carry traces"},
		{"benchmark kind with scenario",
			JobSpec{Experiment: "sweep", Source: &Source{Kind: SourceBenchmark, Scenario: scn}},
			"must not carry scenario"},
		{"trace kind with benchmarks",
			JobSpec{Experiment: "trace", Source: &Source{Kind: SourceTrace, Benchmarks: []string{"gzip"}}},
			"must not carry scenario or benchmarks"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.spec.Normalize()
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("Normalize = %v, want error mentioning %q", err, c.want)
			}
		})
	}
}

// TestTraceSourceOptions pins the trace-source mapping onto the experiment
// layer: ref names travel as the generic benchmark name filter.
func TestTraceSourceOptions(t *testing.T) {
	refs := []string{"gzip-0123456789abcdef", "applu-fedcba9876543210"}
	opts := JobSpec{Experiment: "trace", Source: &Source{Kind: SourceTrace, Traces: refs}}.Options()
	if !reflect.DeepEqual(opts.Benchmarks, refs) {
		t.Errorf("Options().Benchmarks = %v, want trace refs %v", opts.Benchmarks, refs)
	}
}

// TestJobSpecString pins the uniform source descriptor in log lines: every
// kind prints as kind[contents], with content identity (hash16) for
// scenarios and traces, identically for legacy and union encodings.
func TestJobSpecString(t *testing.T) {
	scn := &workload.Scenario{Name: "stress/x", Pattern: workload.PatternAliasStorm, Iterations: 10}
	hash16 := scn.Hash()[:16]
	cases := []struct {
		spec JobSpec
		want string
	}{
		{JobSpec{Experiment: "fig2"}, "fig2 src=benchmark[all]"},
		{JobSpec{Experiment: "sweep", Benchmarks: []string{"gzip", "applu"}, Iterations: 50},
			"sweep src=benchmark[gzip,applu] iters=50"},
		{JobSpec{Experiment: "scenario", Scenario: scn},
			"scenario src=scenario[stress/x@" + hash16 + "]"},
		{JobSpec{Experiment: "trace",
			Source: &Source{Kind: SourceTrace, Traces: []string{"gzip-0123456789abcdef"}}},
			"trace src=trace[gzip-0123456789abcdef]"},
		{JobSpec{Experiment: "trace", Source: &Source{Kind: SourceTrace}},
			"trace src=trace[all]"},
		{JobSpec{Experiment: "sweep", Priority: 2, Configs: []string{"nosq-delay"}},
			"sweep src=benchmark[all] configs=nosq-delay priority=2"},
	}
	for _, c := range cases {
		if got := c.spec.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
	legacy := JobSpec{Experiment: "scenario", Scenario: scn}
	union := JobSpec{Experiment: "scenario", Source: &Source{Kind: SourceScenario, Scenario: scn}}
	if legacy.String() != union.String() {
		t.Errorf("legacy and union encodings print differently: %q vs %q", legacy, union)
	}
}
