//go:build integration

package main

import (
	"bufio"
	"bytes"
	"context"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/simapi"
	"repro/internal/simclient"
)

// TestServerIntegration boots the real nosq-server binary on a random port,
// submits a small fig2 job through the typed client, and asserts that an
// identical re-submission is served entirely from the result cache — zero
// pairs re-simulated, /metricsz hit counter up — before shutting the server
// down gracefully. Run with: go test -tags integration ./cmd/nosq-server
func TestServerIntegration(t *testing.T) {
	dir := t.TempDir()
	bin := filepath.Join(dir, "nosq-server")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building nosq-server: %v\n%s", err, out)
	}

	// -version must answer without starting a server.
	ver, err := exec.Command(bin, "-version").Output()
	if err != nil {
		t.Fatalf("-version: %v", err)
	}
	if !strings.HasPrefix(string(ver), "nosq-server revision ") {
		t.Fatalf("-version output %q", ver)
	}

	cachePath := filepath.Join(dir, "cache.jsonl")
	srv := exec.Command(bin, "-addr", "127.0.0.1:0", "-cache", cachePath, "-workers", "1",
		"-pprof-addr", "127.0.0.1:0")
	var stderr bytes.Buffer
	srv.Stderr = &stderr
	stdout, err := srv.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	var waitErr error
	exited := make(chan struct{})
	go func() { waitErr = srv.Wait(); close(exited) }()
	defer func() {
		select {
		case <-exited: // already down
		default:
			srv.Process.Kill()
			<-exited
		}
	}()

	// Stdout announces the resolved pprof address first, then the API
	// listener (both were :0).
	sc := bufio.NewScanner(stdout)
	var baseURL, pprofURL string
	for (baseURL == "" || pprofURL == "") && sc.Scan() {
		line := sc.Text()
		i := strings.Index(line, "http://")
		if i < 0 {
			t.Fatalf("unexpected stdout line %q", line)
		}
		url := strings.TrimSpace(line[i:])
		if strings.Contains(line, "pprof") {
			pprofURL = strings.TrimSuffix(url, "/debug/pprof/")
		} else {
			baseURL = url
		}
	}
	if baseURL == "" || pprofURL == "" {
		t.Fatalf("missing listen lines (api %q, pprof %q); stderr:\n%s", baseURL, pprofURL, stderr.String())
	}
	c := simclient.New(baseURL, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	if _, err := c.Health(ctx); err != nil {
		t.Fatalf("healthz: %v", err)
	}

	spec := simapi.JobSpec{Experiment: "fig2", Benchmarks: []string{"gzip", "applu"}, Iterations: 15}
	first, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	first, err = c.Wait(ctx, first.ID)
	if err != nil {
		t.Fatal(err)
	}
	if first.State != simapi.StateDone || first.ExecutedPairs == 0 || first.CachedPairs != 0 {
		t.Fatalf("first job = %+v, want fully executed", first)
	}
	firstCSV, err := c.Report(ctx, first.ID, "csv")
	if err != nil {
		t.Fatal(err)
	}

	// The cached re-submit: a fresh job that simulates nothing.
	second, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if second.Deduped {
		t.Fatalf("re-submission after completion deduped: %+v", second)
	}
	second, err = c.Wait(ctx, second.ID)
	if err != nil {
		t.Fatal(err)
	}
	if second.State != simapi.StateDone {
		t.Fatalf("second job = %+v", second)
	}
	if second.ExecutedPairs != 0 || second.CachedPairs != first.ExecutedPairs {
		t.Fatalf("re-submit executed %d / cached %d pairs, want 0/%d (re-simulated instead of cache hit)",
			second.ExecutedPairs, second.CachedPairs, first.ExecutedPairs)
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.CacheHits != uint64(first.ExecutedPairs) || m.CacheMisses != uint64(first.ExecutedPairs) {
		t.Fatalf("metrics hits/misses = %d/%d, want %d/%d",
			m.CacheHits, m.CacheMisses, first.ExecutedPairs, first.ExecutedPairs)
	}
	secondCSV, err := c.Report(ctx, second.ID, "csv")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(firstCSV, secondCSV) {
		t.Error("cache-served report differs from the executed run")
	}

	// /metricsz speaks both formats against the real binary: the JSON
	// document the typed client already consumed above, and a Prometheus
	// exposition that passes the conformance linter with the expected
	// histogram families present.
	get := func(url string) (string, string) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d\n%s", url, resp.StatusCode, body)
		}
		return string(body), resp.Header.Get("Content-Type")
	}
	if body, ct := get(baseURL + "/metricsz"); ct != "application/json" || !strings.Contains(body, `"jobs_done"`) {
		t.Errorf("JSON metrics: Content-Type %q, body %.120q", ct, body)
	}
	promBody, promCT := get(baseURL + "/metricsz?format=prometheus")
	if !strings.HasPrefix(promCT, "text/plain; version=0.0.4") {
		t.Errorf("prometheus Content-Type = %q", promCT)
	}
	if err := obs.LintExposition(strings.NewReader(promBody)); err != nil {
		t.Errorf("prometheus exposition fails conformance: %v", err)
	}
	for _, name := range []string{
		"nosq_job_queue_wait_seconds", "nosq_pair_sim_seconds", "nosq_cache_lookup_seconds",
		"nosq_wal_append_seconds", "nosq_lease_renewal_seconds", "nosq_http_request_seconds",
	} {
		if !strings.Contains(promBody, "# TYPE "+name+" histogram") {
			t.Errorf("exposition missing histogram %s", name)
		}
	}

	// The pprof smoke test: the opted-in debug listener serves a heap
	// profile, and the API port does NOT expose /debug/pprof/.
	if body, _ := get(pprofURL + "/debug/pprof/heap?debug=1"); !strings.Contains(body, "heap profile") {
		t.Errorf("pprof heap profile unexpected body: %.120q", body)
	}
	if resp, err := http.Get(baseURL + "/debug/pprof/"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Error("API port serves /debug/pprof/; profiling must stay on its own listener")
		}
	}

	// Graceful shutdown: SIGTERM, clean exit, cache file persisted.
	if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-exited:
		if waitErr != nil {
			t.Fatalf("server exited uncleanly: %v\nstderr:\n%s", waitErr, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not exit on SIGTERM")
	}
	if fi, err := os.Stat(cachePath); err != nil || fi.Size() == 0 {
		t.Fatalf("result cache not persisted: %v", err)
	}
}
