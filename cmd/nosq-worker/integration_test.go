//go:build integration

package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/simapi"
	"repro/internal/simclient"
	"repro/internal/workload"
)

// startServer boots a real nosq-server binary on a random port and returns
// its base URL plus a stop function (SIGTERM, wait).
func startServer(t *testing.T, bin string, args ...string) (baseURL string, stop func()) {
	t.Helper()
	return startServerAt(t, "", bin, args...)
}

// startServerAt is startServer with an explicit working directory for the
// server process ("" = inherit). The corpus experiment resolves its committed
// corpus relative to the process working directory, so corpus jobs need the
// server started from the repository root.
func startServerAt(t *testing.T, dir, bin string, args ...string) (baseURL string, stop func()) {
	t.Helper()
	srv := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	srv.Dir = dir
	var stderr bytes.Buffer
	srv.Stderr = &stderr
	stdout, err := srv.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	exited := make(chan error, 1)
	go func() { exited <- srv.Wait() }()
	stopped := false
	stop = func() {
		if stopped {
			return
		}
		stopped = true
		srv.Process.Signal(syscall.SIGTERM)
		select {
		case err := <-exited:
			if err != nil {
				t.Errorf("server exited uncleanly: %v\nstderr:\n%s", err, stderr.String())
			}
		case <-time.After(30 * time.Second):
			srv.Process.Kill()
			t.Error("server did not exit on SIGTERM")
		}
	}
	t.Cleanup(stop)

	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("no listen line on stdout; stderr:\n%s", stderr.String())
	}
	line := sc.Text()
	i := strings.Index(line, "http://")
	if i < 0 {
		t.Fatalf("unexpected listen line %q", line)
	}
	return strings.TrimSpace(line[i:]), stop
}

// startServerProc boots a nosq-server binary like startServer but returns
// the process handle so the test can SIGKILL it mid-run. Its stop function
// tolerates the process being gone already and does not treat a killed
// server as a failure — crash tests end their victims on purpose.
func startServerProc(t *testing.T, bin string, args ...string) (baseURL string, proc *exec.Cmd, stop func()) {
	t.Helper()
	srv := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	var stderr bytes.Buffer
	srv.Stderr = &stderr
	stdout, err := srv.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	exited := make(chan struct{})
	go func() { srv.Wait(); close(exited) }()
	stopped := false
	stop = func() {
		if stopped {
			return
		}
		stopped = true
		select {
		case <-exited: // already dead (SIGKILLed by the test)
			return
		default:
		}
		srv.Process.Signal(syscall.SIGTERM)
		select {
		case <-exited:
		case <-time.After(30 * time.Second):
			srv.Process.Kill()
			t.Errorf("server did not exit on SIGTERM; stderr:\n%s", stderr.String())
		}
	}
	t.Cleanup(stop)

	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("no listen line on stdout; stderr:\n%s", stderr.String())
	}
	line := sc.Text()
	i := strings.Index(line, "http://")
	if i < 0 {
		t.Fatalf("unexpected listen line %q", line)
	}
	return strings.TrimSpace(line[i:]), srv, stop
}

// startWorker boots a nosq-worker binary pointed at the coordinator and
// returns its process (for killing) plus a graceful stop function.
func startWorker(t *testing.T, bin, serverURL, name string, extra ...string) (*exec.Cmd, func()) {
	t.Helper()
	return startWorkerAt(t, "", bin, serverURL, name, extra...)
}

// startWorkerAt is startWorker with an explicit working directory ("" =
// inherit); corpus-experiment workers must run from the repository root so
// they resolve the same committed corpus as the coordinator.
func startWorkerAt(t *testing.T, dir, bin, serverURL, name string, extra ...string) (*exec.Cmd, func()) {
	t.Helper()
	args := append([]string{"-server", serverURL, "-name", name, "-parallel", "2",
		"-poll-interval", "25ms"}, extra...)
	w := exec.Command(bin, args...)
	w.Dir = dir
	var stderr bytes.Buffer
	w.Stderr = &stderr
	if err := w.Start(); err != nil {
		t.Fatal(err)
	}
	exited := make(chan struct{})
	go func() { w.Wait(); close(exited) }()
	stopped := false
	stopFn := func() {
		if stopped {
			return
		}
		stopped = true
		w.Process.Signal(syscall.SIGTERM)
		select {
		case <-exited:
		case <-time.After(15 * time.Second):
			w.Process.Kill()
			t.Errorf("worker %s did not exit on SIGTERM; stderr:\n%s", name, stderr.String())
		}
	}
	t.Cleanup(func() {
		select {
		case <-exited: // already gone (killed by the test)
		default:
			stopFn()
		}
	})
	return w, stopFn
}

func waitRemoteWorkers(t *testing.T, c *simclient.Client, n int) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for {
		m, err := c.Metrics(ctx)
		if err == nil && m.RemoteWorkers == n {
			return
		}
		select {
		case <-ctx.Done():
			t.Fatalf("fleet never reached %d workers", n)
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// TestDistributedIntegration is the acceptance test of distributed sweep
// execution with real binaries: one coordinator plus two nosq-worker
// processes run a fig2 grid, one worker is SIGKILLed mid-task to force a
// lease-expiry re-queue, and the merged report must still be byte-identical
// to a single-node run of the same job.
//
// Run with: go test -tags integration ./cmd/nosq-worker
func TestDistributedIntegration(t *testing.T) {
	dir := t.TempDir()
	serverBin := filepath.Join(dir, "nosq-server")
	workerBin := filepath.Join(dir, "nosq-worker")
	for bin, pkg := range map[string]string{serverBin: "../nosq-server", workerBin: "."} {
		build := exec.Command("go", "build", "-o", bin, pkg)
		if out, err := build.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", pkg, err, out)
		}
	}

	// -version must answer without contacting any coordinator.
	if ver, err := exec.Command(workerBin, "-version").Output(); err != nil {
		t.Fatalf("-version: %v", err)
	} else if !strings.HasPrefix(string(ver), "nosq-worker revision ") {
		t.Fatalf("-version output %q", ver)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	spec := simapi.JobSpec{Experiment: "fig2", Benchmarks: []string{"gzip", "applu"}, Iterations: 40}

	// Reference: the same job on a worker-less single node.
	refURL, refStop := startServer(t, serverBin, "-workers", "1")
	refC := simclient.New(refURL, nil)
	refInfo, err := refC.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if refInfo, err = refC.Wait(ctx, refInfo.ID); err != nil {
		t.Fatal(err)
	}
	if refInfo.State != simapi.StateDone || refInfo.ExecutedPairs == 0 {
		t.Fatalf("reference job = %+v", refInfo)
	}
	refJSON, err := refC.Report(ctx, refInfo.ID, "json")
	if err != nil {
		t.Fatal(err)
	}
	refCSV, err := refC.Report(ctx, refInfo.ID, "csv")
	if err != nil {
		t.Fatal(err)
	}
	refStop()

	// Distributed: coordinator with a short lease TTL plus two throttled
	// workers (the per-pair delay keeps both tasks in flight long enough to
	// kill one worker mid-task deterministically).
	coordURL, _ := startServer(t, serverBin, "-workers", "1", "-lease-ttl", "1500ms")
	c := simclient.New(coordURL, nil)
	victim, _ := startWorker(t, workerBin, coordURL, "victim", "-pair-delay", "250ms")
	startWorker(t, workerBin, coordURL, "survivor", "-pair-delay", "250ms")
	waitRemoteWorkers(t, c, 2)

	info, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	// SIGKILL the victim as soon as the first pair lands: with 10 pairs split
	// across two ~250ms/pair tasks, both workers are still mid-task, so the
	// victim dies holding a lease with undelivered pairs.
	sawPair := make(chan struct{})
	go c.StreamEvents(ctx, info.ID, 0, func(ev simapi.Event) error {
		if ev.Type == simapi.EventPair {
			close(sawPair)
			return simclient.ErrStopStreaming
		}
		return nil
	})
	select {
	case <-sawPair:
	case <-time.After(2 * time.Minute):
		t.Fatal("no pair event before timeout")
	}
	if err := victim.Process.Kill(); err != nil {
		t.Fatal(err)
	}

	if info, err = c.Wait(ctx, info.ID); err != nil {
		t.Fatal(err)
	}
	if info.State != simapi.StateDone {
		t.Fatalf("distributed job = %+v, want done despite the killed worker", info)
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.TasksRequeued == 0 {
		t.Error("killing a worker mid-task did not re-queue its leased shard")
	}
	if m.RemotePairs != uint64(info.ExecutedPairs) {
		t.Errorf("remote pairs = %d, want every executed pair (%d)", m.RemotePairs, info.ExecutedPairs)
	}

	distJSON, err := c.Report(ctx, info.ID, "json")
	if err != nil {
		t.Fatal(err)
	}
	distCSV, err := c.Report(ctx, info.ID, "csv")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refJSON, distJSON) {
		t.Errorf("JSON report differs from single-node run:\n--- single-node ---\n%s\n--- distributed ---\n%s",
			refJSON, distJSON)
	}
	if !bytes.Equal(refCSV, distCSV) {
		t.Errorf("CSV report differs from single-node run:\n--- single-node ---\n%s\n--- distributed ---\n%s",
			refCSV, distCSV)
	}
}

// TestScenarioSpecFileEndToEnd is the acceptance test of the workload
// scenario subsystem: one spec file runs through every execution surface —
// the nosq-experiments CLI, a single-node server job, and a distributed
// fleet (coordinator + two real workers) — and all three reports must be
// byte-identical in both machine formats.
//
// Run with: go test -tags integration ./cmd/nosq-worker
func TestScenarioSpecFileEndToEnd(t *testing.T) {
	dir := t.TempDir()
	serverBin := filepath.Join(dir, "nosq-server")
	workerBin := filepath.Join(dir, "nosq-worker")
	expBin := filepath.Join(dir, "nosq-experiments")
	for bin, pkg := range map[string]string{serverBin: "../nosq-server", workerBin: ".", expBin: "../nosq-experiments"} {
		build := exec.Command("go", "build", "-o", bin, pkg)
		if out, err := build.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", pkg, err, out)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	specPath := filepath.Join(dir, "scenario.json")
	specJSON := []byte(`{
		"name": "it/phase-flip",
		"pattern": "phase-flip",
		"iterations": 64
	}`)
	if err := os.WriteFile(specPath, specJSON, 0o644); err != nil {
		t.Fatal(err)
	}
	configs := "nosq-delay,assoc-sq-storesets,perfect-smb"

	// Surface 1: the CLI, straight from the spec file.
	cliJSON := filepath.Join(dir, "cli.json")
	cliCSV := filepath.Join(dir, "cli.csv")
	for out, format := range map[string]string{cliJSON: "json", cliCSV: "csv"} {
		cmd := exec.Command(expBin, "-scenario", specPath, "-configs", configs, "-format", format, "-out", out)
		if o, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("CLI scenario run (%s): %v\n%s", format, err, o)
		}
	}
	wantJSON, err := os.ReadFile(cliJSON)
	if err != nil {
		t.Fatal(err)
	}
	wantCSV, err := os.ReadFile(cliCSV)
	if err != nil {
		t.Fatal(err)
	}

	// The job spec carries the same scenario inline, decoded from the same
	// file the CLI read.
	scn, err := workload.ParseScenario(specJSON)
	if err != nil {
		t.Fatal(err)
	}
	spec := simapi.JobSpec{
		Experiment: "scenario",
		Scenario:   &scn,
		Configs:    strings.Split(configs, ","),
	}

	fetch := func(c *simclient.Client, id string) (jsonRep, csvRep []byte) {
		t.Helper()
		j, err := c.Report(ctx, id, "json")
		if err != nil {
			t.Fatal(err)
		}
		v, err := c.Report(ctx, id, "csv")
		if err != nil {
			t.Fatal(err)
		}
		return j, v
	}

	// Surface 2: a single-node server job.
	soloURL, soloStop := startServer(t, serverBin, "-workers", "1")
	soloC := simclient.New(soloURL, nil)
	soloInfo, err := soloC.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if soloInfo, err = soloC.Wait(ctx, soloInfo.ID); err != nil {
		t.Fatal(err)
	}
	if soloInfo.State != simapi.StateDone {
		t.Fatalf("single-node scenario job = %+v", soloInfo)
	}
	soloJSON, soloCSV := fetch(soloC, soloInfo.ID)
	soloStop()

	// Surface 3: a distributed fleet.
	coordURL, _ := startServer(t, serverBin, "-workers", "1")
	c := simclient.New(coordURL, nil)
	startWorker(t, workerBin, coordURL, "scn-a")
	startWorker(t, workerBin, coordURL, "scn-b")
	waitRemoteWorkers(t, c, 2)
	info, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if info, err = c.Wait(ctx, info.ID); err != nil {
		t.Fatal(err)
	}
	if info.State != simapi.StateDone {
		t.Fatalf("distributed scenario job = %+v", info)
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.RemotePairs == 0 {
		t.Error("no pairs executed remotely; the fleet was bypassed")
	}
	distJSON, distCSV := fetch(c, info.ID)

	for _, cmp := range []struct {
		surface    string
		gotJ, gotC []byte
	}{
		{"single-node server", soloJSON, soloCSV},
		{"distributed fleet", distJSON, distCSV},
	} {
		if !bytes.Equal(wantJSON, cmp.gotJ) {
			t.Errorf("%s JSON report differs from the CLI run:\n--- CLI ---\n%s\n--- %s ---\n%s",
				cmp.surface, wantJSON, cmp.surface, cmp.gotJ)
		}
		if !bytes.Equal(wantCSV, cmp.gotC) {
			t.Errorf("%s CSV report differs from the CLI run:\n--- CLI ---\n%s\n--- %s ---\n%s",
				cmp.surface, wantCSV, cmp.surface, cmp.gotC)
		}
	}
}

// TestCoordinatorCrashRecovery is the acceptance test of the durable
// simulation service: a coordinator with -state-dir is SIGKILLed mid-sweep
// with two live workers attached and two jobs in flight (a running fig2 grid
// and a queued inline-scenario job). A restarted server on the same port must
// replay its WAL, re-queue both jobs under their original IDs, resume every
// pair the crashed run had already persisted (no pair executes twice), and
// produce reports byte-identical to an uninterrupted run.
//
// Run with: go test -tags integration ./cmd/nosq-worker -run TestCoordinatorCrashRecovery
func TestCoordinatorCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	serverBin := filepath.Join(dir, "nosq-server")
	workerBin := filepath.Join(dir, "nosq-worker")
	for bin, pkg := range map[string]string{serverBin: "../nosq-server", workerBin: "."} {
		build := exec.Command("go", "build", "-o", bin, pkg)
		if out, err := build.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", pkg, err, out)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	sweepSpec := simapi.JobSpec{Experiment: "fig2", Benchmarks: []string{"gzip", "applu"}, Iterations: 40}
	scn, err := workload.ParseScenario([]byte(`{"name":"it/crash-recovery","pattern":"phase-flip","iterations":64}`))
	if err != nil {
		t.Fatal(err)
	}
	scenarioSpec := simapi.JobSpec{
		Experiment: "scenario",
		Scenario:   &scn,
		Configs:    []string{"nosq-delay", "assoc-sq-storesets"},
	}

	// Reference: both jobs on an uninterrupted worker-less server.
	refURL, refStop := startServer(t, serverBin, "-workers", "1")
	refC := simclient.New(refURL, nil)
	refReports := map[string][2][]byte{} // experiment → {csv, json}
	for name, spec := range map[string]simapi.JobSpec{"sweep": sweepSpec, "scenario": scenarioSpec} {
		info, err := refC.Submit(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		if info, err = refC.Wait(ctx, info.ID); err != nil || info.State != simapi.StateDone {
			t.Fatalf("reference %s job = %+v, %v", name, info, err)
		}
		csv, err := refC.Report(ctx, info.ID, "csv")
		if err != nil {
			t.Fatal(err)
		}
		jsonRep, err := refC.Report(ctx, info.ID, "json")
		if err != nil {
			t.Fatal(err)
		}
		refReports[name] = [2][]byte{csv, jsonRep}
	}
	refStop()

	// The durable coordinator, plus two throttled workers so the sweep is
	// still mid-flight when the kill lands.
	stateDir := filepath.Join(dir, "state")
	durableArgs := []string{"-workers", "1", "-lease-ttl", "1500ms", "-state-dir", stateDir}
	coordURL, coord, _ := startServerProc(t, serverBin, durableArgs...)
	port := coordURL[strings.LastIndex(coordURL, ":")+1:]
	c := simclient.New(coordURL, nil).WithClientID("crash-test")
	startWorker(t, workerBin, coordURL, "w1", "-pair-delay", "250ms")
	startWorker(t, workerBin, coordURL, "w2", "-pair-delay", "250ms")
	waitRemoteWorkers(t, c, 2)

	sweepInfo, err := c.Submit(ctx, sweepSpec)
	if err != nil {
		t.Fatal(err)
	}
	scnInfo, err := c.Submit(ctx, scenarioSpec)
	if err != nil {
		t.Fatal(err)
	}
	// SIGKILL the coordinator once the first pair lands: the sweep is running
	// (pairs delivered, pairs in flight on both workers), the scenario job is
	// still queued — replay must handle both shapes.
	sawPair := make(chan struct{})
	go c.StreamEvents(ctx, sweepInfo.ID, 0, func(ev simapi.Event) error {
		if ev.Type == simapi.EventPair {
			close(sawPair)
			return simclient.ErrStopStreaming
		}
		return nil
	})
	select {
	case <-sawPair:
	case <-time.After(2 * time.Minute):
		t.Fatal("no pair event before timeout")
	}
	if err := coord.Process.Kill(); err != nil {
		t.Fatal(err)
	}

	// What the crashed run made durable: every parseable result-cache line.
	// Nothing can append after the kill (only the server writes the cache),
	// so this is exactly the set of pairs the restarted run must resume.
	raw, err := os.ReadFile(filepath.Join(stateDir, "results.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	nPre := 0
	for _, line := range bytes.Split(raw, []byte("\n")) {
		var entry map[string]interface{}
		if len(bytes.TrimSpace(line)) > 0 && json.Unmarshal(line, &entry) == nil {
			nPre++
		}
	}
	if nPre == 0 {
		t.Fatal("no durable pairs before the crash; the kill landed too early to prove resumption")
	}

	// Restart on the same port (the helper's default -addr is overridden by
	// ours — last flag wins) so the surviving workers re-register against it.
	restartURL, _, restartStop := startServerProc(t, serverBin,
		append(append([]string{}, durableArgs...), "-addr", "127.0.0.1:"+port)...)
	if restartURL != coordURL {
		t.Fatalf("restarted server on %s, want the original %s", restartURL, coordURL)
	}
	c2 := simclient.New(restartURL, nil).WithClientID("crash-test")

	// Both jobs survive under their original IDs and run to completion.
	finalSweep, err := c2.Wait(ctx, sweepInfo.ID)
	if err != nil {
		t.Fatalf("waiting for replayed sweep job: %v", err)
	}
	finalScn, err := c2.Wait(ctx, scnInfo.ID)
	if err != nil {
		t.Fatalf("waiting for replayed scenario job: %v", err)
	}
	if finalSweep.State != simapi.StateDone || finalScn.State != simapi.StateDone {
		t.Fatalf("replayed jobs finished %q / %q, want done", finalSweep.State, finalScn.State)
	}
	if finalSweep.Client != "crash-test" {
		t.Errorf("replayed job lost its client identity: %q", finalSweep.Client)
	}

	// No job lost, no pair executed twice: the resumed sweep serves exactly
	// the pre-crash pairs from the cache and executes only the remainder; the
	// never-started scenario job executes everything.
	if finalSweep.CachedPairs != nPre {
		t.Errorf("resumed sweep cached %d pairs, want the %d persisted before the crash",
			finalSweep.CachedPairs, nPre)
	}
	if got := finalSweep.ExecutedPairs; got != finalSweep.TotalPairs-nPre {
		t.Errorf("resumed sweep executed %d pairs, want %d (total %d − %d already durable)",
			got, finalSweep.TotalPairs-nPre, finalSweep.TotalPairs, nPre)
	}
	if finalScn.CachedPairs != 0 || finalScn.ExecutedPairs != finalScn.TotalPairs {
		t.Errorf("queued-at-crash scenario job = %+v, want fully executed after replay", finalScn)
	}

	// Reports byte-identical to the uninterrupted run: CSV exactly for both
	// jobs; JSON's report section exactly (the meta section legitimately
	// differs for the resumed job — executed vs resumed pair counts).
	for name, info := range map[string]simapi.JobInfo{"sweep": finalSweep, "scenario": finalScn} {
		gotCSV, err := c2.Report(ctx, info.ID, "csv")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotCSV, refReports[name][0]) {
			t.Errorf("%s CSV differs from the uninterrupted run:\n--- uninterrupted ---\n%s\n--- recovered ---\n%s",
				name, refReports[name][0], gotCSV)
		}
		gotJSON, err := c2.Report(ctx, info.ID, "json")
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(jsonSection(t, gotJSON, "report"), jsonSection(t, refReports[name][1], "report")) {
			t.Errorf("%s JSON report section differs from the uninterrupted run:\n--- uninterrupted ---\n%s\n--- recovered ---\n%s",
				name, refReports[name][1], gotJSON)
		}
	}

	// A clean restart of the same state dir restores both finished jobs and
	// still serves their reports without re-running anything.
	restartStop()
	_, _, finalStop := startServerProc(t, serverBin,
		append(append([]string{}, durableArgs...), "-addr", "127.0.0.1:"+port)...)
	defer finalStop()
	info, err := c2.Job(ctx, sweepInfo.ID)
	if err != nil || info.State != simapi.StateDone {
		t.Fatalf("sweep job after second restart = %+v, %v", info, err)
	}
	gotCSV, err := c2.Report(ctx, sweepInfo.ID, "csv")
	if err != nil {
		t.Fatalf("report after second restart: %v", err)
	}
	if !bytes.Equal(gotCSV, refReports["sweep"][0]) {
		t.Error("restored report differs from the uninterrupted run")
	}
}

func jsonSection(t *testing.T, doc []byte, key string) interface{} {
	t.Helper()
	var m map[string]interface{}
	if err := json.Unmarshal(doc, &m); err != nil {
		t.Fatalf("bad JSON document: %v", err)
	}
	return m[key]
}

// TestFlagValidationIntegration: both binaries must exit non-zero with a
// clear message on non-positive -workers/-poll-interval instead of hanging
// or spinning.
func TestFlagValidationIntegration(t *testing.T) {
	dir := t.TempDir()
	serverBin := filepath.Join(dir, "nosq-server")
	workerBin := filepath.Join(dir, "nosq-worker")
	for bin, pkg := range map[string]string{serverBin: "../nosq-server", workerBin: "."} {
		build := exec.Command("go", "build", "-o", bin, pkg)
		if out, err := build.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", pkg, err, out)
		}
	}
	cases := []struct {
		bin  string
		args []string
		want string
	}{
		{serverBin, []string{"-workers", "0"}, "-workers must be positive"},
		{serverBin, []string{"-workers", "-3"}, "-workers must be positive"},
		{serverBin, []string{"-poll-interval", "0s"}, "-poll-interval must be positive"},
		{workerBin, []string{"-server", "http://127.0.0.1:1", "-poll-interval", "0s"}, "-poll-interval must be positive"},
		{workerBin, []string{"-server", "http://127.0.0.1:1", "-parallel", "0"}, "-parallel must be positive"},
		{workerBin, []string{}, "-server is required"},
	}
	for _, tc := range cases {
		cmd := exec.Command(tc.bin, tc.args...)
		out, err := cmd.CombinedOutput()
		if err == nil {
			t.Errorf("%s %v: exited 0, want failure", filepath.Base(tc.bin), tc.args)
			continue
		}
		if !strings.Contains(string(out), tc.want) {
			t.Errorf("%s %v: output %q does not mention %q", filepath.Base(tc.bin), tc.args, out, tc.want)
		}
	}
}

// TestCorpusEntryEndToEnd is the acceptance test of the committed
// pathological-scenario corpus (bench/corpus, discovered by nosq-tune): the
// corpus experiment replays every committed entry through all three
// execution surfaces — the nosq-experiments CLI, a single-node server job,
// and a distributed fleet — and the reports must be byte-identical in both
// machine formats. Every process runs from the repository root, the
// documented requirement for corpus jobs (the corpus directory is resolved
// against each node's own checkout, never shipped over the wire).
//
// Run with: go test -tags integration ./cmd/nosq-worker -run TestCorpusEntryEndToEnd
func TestCorpusEntryEndToEnd(t *testing.T) {
	repoRoot, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(repoRoot, "bench", "corpus")); err != nil {
		t.Fatalf("committed corpus missing: %v", err)
	}

	dir := t.TempDir()
	serverBin := filepath.Join(dir, "nosq-server")
	workerBin := filepath.Join(dir, "nosq-worker")
	expBin := filepath.Join(dir, "nosq-experiments")
	for bin, pkg := range map[string]string{serverBin: "../nosq-server", workerBin: ".", expBin: "../nosq-experiments"} {
		build := exec.Command("go", "build", "-o", bin, pkg)
		if out, err := build.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", pkg, err, out)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	configs := "nosq-delay,perfect-smb"

	// Surface 1: the CLI, from the repository root with the default corpus
	// directory — exactly how CI's nightly regression run invokes it.
	cliJSON := filepath.Join(dir, "cli.json")
	cliCSV := filepath.Join(dir, "cli.csv")
	for out, format := range map[string]string{cliJSON: "json", cliCSV: "csv"} {
		cmd := exec.Command(expBin, "-exp", "corpus", "-configs", configs, "-format", format, "-out", out)
		cmd.Dir = repoRoot
		if o, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("CLI corpus run (%s): %v\n%s", format, err, o)
		}
	}
	wantJSON, err := os.ReadFile(cliJSON)
	if err != nil {
		t.Fatal(err)
	}
	wantCSV, err := os.ReadFile(cliCSV)
	if err != nil {
		t.Fatal(err)
	}

	spec := simapi.JobSpec{Experiment: "corpus", Configs: strings.Split(configs, ",")}
	fetch := func(c *simclient.Client, id string) (jsonRep, csvRep []byte) {
		t.Helper()
		j, err := c.Report(ctx, id, "json")
		if err != nil {
			t.Fatal(err)
		}
		v, err := c.Report(ctx, id, "csv")
		if err != nil {
			t.Fatal(err)
		}
		return j, v
	}

	// Surface 2: a single-node server job, server running from the repo root.
	soloURL, soloStop := startServerAt(t, repoRoot, serverBin, "-workers", "1")
	soloC := simclient.New(soloURL, nil)
	soloInfo, err := soloC.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if soloInfo, err = soloC.Wait(ctx, soloInfo.ID); err != nil {
		t.Fatal(err)
	}
	if soloInfo.State != simapi.StateDone {
		t.Fatalf("single-node corpus job = %+v", soloInfo)
	}
	soloJSON, soloCSV := fetch(soloC, soloInfo.ID)
	soloStop()

	// Surface 3: a distributed fleet, every node running from the repo root.
	coordURL, _ := startServerAt(t, repoRoot, serverBin, "-workers", "1")
	c := simclient.New(coordURL, nil)
	startWorkerAt(t, repoRoot, workerBin, coordURL, "corpus-a")
	startWorkerAt(t, repoRoot, workerBin, coordURL, "corpus-b")
	waitRemoteWorkers(t, c, 2)
	info, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if info, err = c.Wait(ctx, info.ID); err != nil {
		t.Fatal(err)
	}
	if info.State != simapi.StateDone {
		t.Fatalf("distributed corpus job = %+v", info)
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.RemotePairs == 0 {
		t.Error("no pairs executed remotely; the fleet was bypassed")
	}
	distJSON, distCSV := fetch(c, info.ID)

	for _, cmp := range []struct {
		surface    string
		gotJ, gotC []byte
	}{
		{"single-node server", soloJSON, soloCSV},
		{"distributed fleet", distJSON, distCSV},
	} {
		if !bytes.Equal(wantJSON, cmp.gotJ) {
			t.Errorf("%s JSON report differs from the CLI run:\n--- CLI ---\n%s\n--- %s ---\n%s",
				cmp.surface, wantJSON, cmp.surface, cmp.gotJ)
		}
		if !bytes.Equal(wantCSV, cmp.gotC) {
			t.Errorf("%s CSV report differs from the CLI run:\n--- CLI ---\n%s\n--- %s ---\n%s",
				cmp.surface, wantCSV, cmp.surface, cmp.gotC)
		}
	}
}

// TestTraceCorpusEndToEnd is the acceptance test of the committed trace
// corpus (bench/traces, recorded by nosq-trace): the trace experiment
// replays every committed trace through all three execution surfaces — the
// nosq-experiments CLI, a single-node server job, and a distributed fleet —
// and the reports must be byte-identical in both machine formats. A
// re-submission of the identical spec must be served entirely from the
// result cache. Like corpus jobs, every process runs from the repository
// root: the trace directory is resolved against each node's own checkout,
// never shipped over the wire.
//
// Run with: go test -tags integration ./cmd/nosq-worker -run TestTraceCorpusEndToEnd
func TestTraceCorpusEndToEnd(t *testing.T) {
	repoRoot, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(repoRoot, "bench", "traces")); err != nil {
		t.Fatalf("committed trace corpus missing: %v", err)
	}

	dir := t.TempDir()
	serverBin := filepath.Join(dir, "nosq-server")
	workerBin := filepath.Join(dir, "nosq-worker")
	expBin := filepath.Join(dir, "nosq-experiments")
	traceBin := filepath.Join(dir, "nosq-trace")
	for bin, pkg := range map[string]string{
		serverBin: "../nosq-server", workerBin: ".",
		expBin: "../nosq-experiments", traceBin: "../nosq-trace",
	} {
		build := exec.Command("go", "build", "-o", bin, pkg)
		if out, err := build.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", pkg, err, out)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	configs := "nosq-delay,perfect-smb"

	// The committed corpus must verify — full decode, hashes against the
	// provenance manifests — before anything replays it.
	verify := exec.Command(traceBin, "-verify", "bench/traces")
	verify.Dir = repoRoot
	if out, err := verify.CombinedOutput(); err != nil {
		t.Fatalf("nosq-trace -verify bench/traces: %v\n%s", err, out)
	}

	// Surface 1: the CLI, from the repository root with the default trace
	// directory — exactly how CI's nightly regression run invokes it.
	cliJSON := filepath.Join(dir, "cli.json")
	cliCSV := filepath.Join(dir, "cli.csv")
	for out, format := range map[string]string{cliJSON: "json", cliCSV: "csv"} {
		cmd := exec.Command(expBin, "-exp", "trace", "-configs", configs, "-format", format, "-out", out)
		cmd.Dir = repoRoot
		if o, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("CLI trace run (%s): %v\n%s", format, err, o)
		}
	}
	wantJSON, err := os.ReadFile(cliJSON)
	if err != nil {
		t.Fatal(err)
	}
	wantCSV, err := os.ReadFile(cliCSV)
	if err != nil {
		t.Fatal(err)
	}

	spec := simapi.JobSpec{
		Experiment: "trace",
		Source:     simclient.TraceSource(), // all committed traces
		Configs:    strings.Split(configs, ","),
	}
	fetch := func(c *simclient.Client, id string) (jsonRep, csvRep []byte) {
		t.Helper()
		j, err := c.Report(ctx, id, "json")
		if err != nil {
			t.Fatal(err)
		}
		v, err := c.Report(ctx, id, "csv")
		if err != nil {
			t.Fatal(err)
		}
		return j, v
	}

	// Surface 2: a single-node server job, server running from the repo root.
	soloURL, soloStop := startServerAt(t, repoRoot, serverBin, "-workers", "1")
	soloC := simclient.New(soloURL, nil)
	soloInfo, err := soloC.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if soloInfo, err = soloC.Wait(ctx, soloInfo.ID); err != nil {
		t.Fatal(err)
	}
	if soloInfo.State != simapi.StateDone || soloInfo.ExecutedPairs == 0 {
		t.Fatalf("single-node trace job = %+v", soloInfo)
	}
	soloJSON, soloCSV := fetch(soloC, soloInfo.ID)

	// An identical re-submission must be a pure cache hit: the traces were
	// already decoded and simulated, so not a single pair executes again.
	again, err := soloC.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if again, err = soloC.Wait(ctx, again.ID); err != nil {
		t.Fatal(err)
	}
	if again.State != simapi.StateDone || again.ExecutedPairs != 0 ||
		again.CachedPairs != soloInfo.ExecutedPairs {
		t.Fatalf("identical trace re-run = %+v, want %d pairs all cache-served", again, soloInfo.ExecutedPairs)
	}
	soloStop()

	// Surface 3: a distributed fleet, every node running from the repo root.
	coordURL, _ := startServerAt(t, repoRoot, serverBin, "-workers", "1")
	c := simclient.New(coordURL, nil)
	startWorkerAt(t, repoRoot, workerBin, coordURL, "trace-a")
	startWorkerAt(t, repoRoot, workerBin, coordURL, "trace-b")
	waitRemoteWorkers(t, c, 2)
	info, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if info, err = c.Wait(ctx, info.ID); err != nil {
		t.Fatal(err)
	}
	if info.State != simapi.StateDone {
		t.Fatalf("distributed trace job = %+v", info)
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.RemotePairs == 0 {
		t.Error("no pairs executed remotely; the fleet was bypassed")
	}
	distJSON, distCSV := fetch(c, info.ID)

	for _, cmp := range []struct {
		surface    string
		gotJ, gotC []byte
	}{
		{"single-node server", soloJSON, soloCSV},
		{"distributed fleet", distJSON, distCSV},
	} {
		if !bytes.Equal(wantJSON, cmp.gotJ) {
			t.Errorf("%s JSON report differs from the CLI run:\n--- CLI ---\n%s\n--- %s ---\n%s",
				cmp.surface, wantJSON, cmp.surface, cmp.gotJ)
		}
		if !bytes.Equal(wantCSV, cmp.gotC) {
			t.Errorf("%s CSV report differs from the CLI run:\n--- CLI ---\n%s\n--- %s ---\n%s",
				cmp.surface, wantCSV, cmp.surface, cmp.gotC)
		}
	}
}
