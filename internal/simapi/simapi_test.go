package simapi

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/stats"
	"repro/internal/workload"
)

// roundTrip marshals v, unmarshals into a fresh value of the same type, and
// reports it; the caller compares.
func roundTrip(t *testing.T, v interface{}) interface{} {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal %T: %v", v, err)
	}
	out := reflect.New(reflect.TypeOf(v)).Interface()
	if err := json.Unmarshal(b, out); err != nil {
		t.Fatalf("unmarshal %T: %v\n%s", v, err, b)
	}
	return reflect.ValueOf(out).Elem().Interface()
}

func TestWireTypesRoundTrip(t *testing.T) {
	ts := time.Date(2026, 7, 27, 12, 0, 0, 0, time.UTC)
	entry := experiments.CheckpointEntry{
		Experiment: "figure-w128", Iterations: 100, MaxInsts: 5000,
		Benchmark: "gzip", Config: "nosq-delay",
		Run: stats.Run{Cycles: 1234, Committed: 4321},
	}
	cases := []interface{}{
		JobSpec{Experiment: "fig2", Benchmarks: []string{"gzip", "applu"},
			Iterations: 100, MaxInsts: 5000, Configs: []string{"nosq-delay"},
			Windows: []int{128, 256}, Priority: 3},
		JobSpec{Experiment: "scenario", Scenario: &workload.Scenario{
			Name: "stress/custom", Pattern: workload.PatternAliasStorm, Iterations: 200}},
		JobInfo{ID: "job-000001", Spec: JobSpec{Experiment: "sweep"}, State: StateRunning,
			Error: "boom", Deduped: true, Submitted: ts, Started: ts.Add(time.Second),
			TotalPairs: 10, CachedPairs: 4, ExecutedPairs: 6},
		Event{Seq: 7, Type: EventPair, Time: ts, Entry: &entry},
		Event{Seq: 2, Type: EventPlanned, Time: ts,
			Planned: &PlannedInfo{Total: 10, Cached: 4, Pending: 6}},
		Metrics{UptimeSeconds: 1.5, CodeRev: "abc", QueueDepth: 2, WorkersTotal: 4,
			WorkersBusy: 1, JobsSubmitted: 9, CacheEntries: 3, CacheHits: 5,
			InstsSimulated: 1e6, RemoteWorkers: 2, TasksQueued: 1, TasksLeased: 2,
			TasksCompleted: 7, TasksRequeued: 1, RemotePairs: 40},
		Health{Status: "ok", CodeRev: "abc", Experiments: []string{"fig2", "table5"}},
		ErrorBody{Error: "no job"},
	}
	for _, c := range cases {
		if got := roundTrip(t, c); !reflect.DeepEqual(got, c) {
			t.Errorf("%T round trip:\n got %+v\nwant %+v", c, got, c)
		}
	}
}

// TestUnknownFieldsTolerated guards forward compatibility: documents from a
// newer peer with extra fields must decode cleanly on this side (the strict
// DisallowUnknownFields check is only the server's validation of submitted
// job specs, not a property of the wire types).
func TestUnknownFieldsTolerated(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		into interface{}
	}{
		{"JobSpec", `{"experiment":"fig2","future_knob":true}`, &JobSpec{}},
		{"JobSpec scenario", `{"experiment":"scenario","scenario":{"name":"s","iterations":10,"new_knob":2}}`, &JobSpec{}},
		{"JobInfo", `{"id":"job-1","state":"done","gpu_seconds":1.5}`, &JobInfo{}},
		{"Event", `{"seq":1,"type":"state","state":"queued","shard":3}`, &Event{}},
		{"Metrics", `{"uptime_seconds":1,"fleet_regions":["us","eu"]}`, &Metrics{}},
		{"Health", `{"status":"ok","build_date":"2026-07-27"}`, &Health{}},
	}
	for _, c := range cases {
		if err := json.Unmarshal([]byte(c.doc), c.into); err != nil {
			t.Errorf("%s: unknown field rejected: %v", c.name, err)
		}
	}
}

func TestTerminalState(t *testing.T) {
	for state, terminal := range map[string]bool{
		StateQueued: false, StateRunning: false,
		StateDone: true, StateFailed: true, StateCanceled: true,
	} {
		if TerminalState(state) != terminal {
			t.Errorf("TerminalState(%q) = %v, want %v", state, !terminal, terminal)
		}
	}
}

func TestJobSpecOptions(t *testing.T) {
	spec := JobSpec{Experiment: "sweep", Benchmarks: []string{"gzip"}, Iterations: 50,
		MaxInsts: 1000, Configs: []string{"nosq-delay"}, Windows: []int{64}, Priority: 2,
		Scenario: &workload.Scenario{Name: "s", Iterations: 10}}
	opts := spec.Options()
	if opts.Iterations != 50 || opts.MaxInsts != 1000 ||
		!reflect.DeepEqual(opts.Benchmarks, spec.Benchmarks) ||
		!reflect.DeepEqual(opts.Configs, spec.Configs) ||
		!reflect.DeepEqual(opts.Windows, spec.Windows) ||
		opts.Scenario != spec.Scenario {
		t.Errorf("Options() = %+v does not mirror spec %+v", opts, spec)
	}
}
