package emu

import (
	"errors"
	"testing"

	"repro/internal/isa"
	"repro/internal/program"
)

func countedProgram(n int) *program.Program {
	b := program.NewBuilder("counted")
	r1 := isa.IntReg(1)
	for i := 0; i < n; i++ {
		b.AddImm(r1, r1, 1)
	}
	b.Halt()
	return b.MustBuild()
}

func TestStreamSequentialGet(t *testing.T) {
	s := NewStream(New(countedProgram(10)), 0)
	for seq := uint64(1); seq <= 11; seq++ { // 10 adds + halt
		d, err := s.Get(seq)
		if err != nil {
			t.Fatalf("Get(%d): %v", seq, err)
		}
		if d.Seq != seq {
			t.Errorf("Get(%d).Seq = %d", seq, d.Seq)
		}
	}
	if _, err := s.Get(12); !errors.Is(err, ErrEndOfStream) {
		t.Errorf("expected end of stream, got %v", err)
	}
}

func TestStreamRewind(t *testing.T) {
	s := NewStream(New(countedProgram(20)), 0)
	first := make([]*DynInst, 0, 10)
	for seq := uint64(1); seq <= 10; seq++ {
		d, err := s.Get(seq)
		if err != nil {
			t.Fatal(err)
		}
		first = append(first, d)
	}
	// Re-fetch the same range (as after a squash): identical records returned.
	for seq := uint64(3); seq <= 10; seq++ {
		d, err := s.Get(seq)
		if err != nil {
			t.Fatal(err)
		}
		if d != first[seq-1] {
			t.Errorf("rewound Get(%d) returned a different record", seq)
		}
	}
}

func TestStreamRelease(t *testing.T) {
	s := NewStream(New(countedProgram(20)), 0)
	for seq := uint64(1); seq <= 15; seq++ {
		if _, err := s.Get(seq); err != nil {
			t.Fatal(err)
		}
	}
	s.Release(10)
	if s.Buffered() != 5 {
		t.Errorf("Buffered = %d, want 5", s.Buffered())
	}
	// Getting a released seq must panic (consumer bug).
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Get of released seq should panic")
			}
		}()
		s.Get(10)
	}()
	// Getting beyond the released point still works.
	if _, err := s.Get(11); err != nil {
		t.Errorf("Get(11) after release: %v", err)
	}
	// Releasing an already-released prefix is a no-op.
	s.Release(5)
	if s.Buffered() != 5 {
		t.Errorf("redundant release changed buffer: %d", s.Buffered())
	}
}

func TestStreamLimit(t *testing.T) {
	b := program.NewBuilder("spin")
	b.Label("top").Jump("top")
	s := NewStream(New(b.MustBuild()), 50)
	var lastErr error
	n := 0
	for seq := uint64(1); ; seq++ {
		_, err := s.Get(seq)
		if err != nil {
			lastErr = err
			break
		}
		n++
		if n > 1000 {
			t.Fatal("limit not enforced")
		}
	}
	if !errors.Is(lastErr, ErrEndOfStream) {
		t.Fatalf("expected end of stream at limit, got %v", lastErr)
	}
	if n != 50 {
		t.Errorf("produced %d instructions, want 50", n)
	}
	if !s.Done() {
		t.Error("stream should be done")
	}
}

func TestStreamProduced(t *testing.T) {
	s := NewStream(New(countedProgram(5)), 0)
	if _, err := s.Get(3); err != nil {
		t.Fatal(err)
	}
	if s.Produced() != 3 {
		t.Errorf("Produced = %d, want 3", s.Produced())
	}
	s.Release(2)
	if s.Produced() != 3 {
		t.Errorf("Produced after release = %d, want 3", s.Produced())
	}
}
