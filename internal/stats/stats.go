// Package stats provides the simulation result types and the small numeric
// helpers (geometric and arithmetic means, relative execution time) used by
// the experiment harness to reproduce the paper's tables and figures.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Run holds the measurements of one simulation run (one benchmark under one
// machine configuration).
type Run struct {
	// Benchmark is the workload name.
	Benchmark string
	// Config is the machine configuration name.
	Config string

	// Cycles is the total simulated cycles.
	Cycles uint64
	// Committed is the number of committed (retired) instructions.
	Committed uint64
	// CommittedLoads / CommittedStores break down committed instructions.
	CommittedLoads  uint64
	CommittedStores uint64

	// InWindowComm counts committed loads whose communicating store was
	// within the last 128 dynamic instructions (Table 5's definition).
	InWindowComm uint64
	// InWindowPartial counts the subset of InWindowComm where either the
	// load or the store is narrower than 8 bytes.
	InWindowPartial uint64

	// BypassedLoads counts loads that performed speculative memory bypassing.
	BypassedLoads uint64
	// DelayedLoads counts loads held by the delay mechanism.
	DelayedLoads uint64
	// BypassMispredictions counts commit-time bypassing mis-predictions
	// (the three cases of Section 3.3).
	BypassMispredictions uint64
	// Flushes counts pipeline flushes due to load value mis-speculation.
	Flushes uint64

	// DCacheCoreReads counts data-cache reads performed by the out-of-order
	// core; DCacheBackendReads counts back-end re-execution reads.
	DCacheCoreReads    uint64
	DCacheBackendReads uint64
	// Reexecutions counts loads that re-executed before commit.
	Reexecutions uint64
	// SQForwards counts loads that forwarded from the store queue (baseline).
	SQForwards uint64

	// BranchMispredicts counts conditional-direction and target mispredictions.
	BranchMispredicts uint64

	// Rename-stall cycle breakdown: cycles in which rename could not proceed
	// because a resource was exhausted.
	StallROB      uint64
	StallIQ       uint64
	StallPhys     uint64
	StallLQ       uint64
	StallSQ       uint64
	StallFrontend uint64 // cycles with nothing available to rename
	// IdleIssueCycles counts cycles in which nothing issued.
	IdleIssueCycles uint64
}

// IPC returns committed instructions per cycle.
func (r Run) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Committed) / float64(r.Cycles)
}

// MispredictsPer10kLoads returns bypassing mis-predictions per 10,000
// committed loads (the unit of Table 5).
func (r Run) MispredictsPer10kLoads() float64 {
	if r.CommittedLoads == 0 {
		return 0
	}
	return float64(r.BypassMispredictions) * 10000 / float64(r.CommittedLoads)
}

// PctLoadsDelayed returns the percentage of committed loads that were delayed.
func (r Run) PctLoadsDelayed() float64 {
	if r.CommittedLoads == 0 {
		return 0
	}
	return float64(r.DelayedLoads) * 100 / float64(r.CommittedLoads)
}

// PctInWindowComm returns the percentage of committed loads with in-window
// store-load communication.
func (r Run) PctInWindowComm() float64 {
	if r.CommittedLoads == 0 {
		return 0
	}
	return float64(r.InWindowComm) * 100 / float64(r.CommittedLoads)
}

// PctInWindowPartial returns the percentage of committed loads with
// partial-word in-window communication.
func (r Run) PctInWindowPartial() float64 {
	if r.CommittedLoads == 0 {
		return 0
	}
	return float64(r.InWindowPartial) * 100 / float64(r.CommittedLoads)
}

// TotalDCacheReads returns core plus back-end data-cache reads.
func (r Run) TotalDCacheReads() uint64 { return r.DCacheCoreReads + r.DCacheBackendReads }

// RelativeExecutionTime returns r's execution time relative to base
// (1.0 = same, <1.0 = faster than base), the metric of Figures 2, 3 and 5.
func RelativeExecutionTime(r, base Run) float64 {
	if base.Cycles == 0 {
		return 0
	}
	return float64(r.Cycles) / float64(base.Cycles)
}

// GeoMean returns the geometric mean of xs (0 if empty or any x <= 0).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Mean returns the arithmetic mean of xs (0 if empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Table is a simple fixed-column text table used by the experiment harness
// and CLI tools to print paper-style rows.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; values are formatted with %v (floats with 3 decimals).
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case float32:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Rows returns a copy of the data rows.
func (t *Table) Rows() [][]string {
	out := make([][]string, len(t.rows))
	for i, r := range t.rows {
		out[i] = append([]string(nil), r...)
	}
	return out
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteString("\n")
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// SortRowsBy sorts the data rows by the given column index (string order).
func (t *Table) SortRowsBy(col int) {
	sort.SliceStable(t.rows, func(i, j int) bool {
		if col >= len(t.rows[i]) || col >= len(t.rows[j]) {
			return false
		}
		return t.rows[i][col] < t.rows[j][col]
	})
}
